//! The dispatcher's wire protocol: newline-delimited JSON frames.
//!
//! Every message is one JSON object on one line, terminated by `\n` —
//! the same dependency-free [`crate::json::JsonWriter`] /
//! [`crate::jsonval`] stack the `repro dist` shard format uses, so a
//! worker on another machine needs nothing but a TCP connection and this
//! module. The object's `"type"` field names the message; the payloads
//! reuse the campaign wire formats
//! ([`CampaignShard::to_json`](crate::campaign::CampaignShard::to_json),
//! [`CampaignResult::to_json`](crate::campaign::CampaignResult::to_json))
//! verbatim, so shard bytes that cross the socket are byte-identical to
//! the ones `repro dist` ships over stdout.
//!
//! The read side is a trust boundary: frames come from the network, so
//! truncated lines, malformed JSON, unknown message types and mistyped
//! payloads are all typed [`ProtoError`]s — never panics (fuzzed in
//! `tests/dispatch_protocol.rs`). See `docs/PROTOCOL.md` for the message
//! flow and delivery contract.

use std::fmt;
use std::io::{self, BufRead, Write};

use crate::campaign::{CampaignResult, CampaignShard, ShardSpec};
use crate::json::JsonWriter;
use crate::jsonval::{JsonValue, WireError};

/// One protocol message, either direction.
#[derive(Clone, Debug)]
pub enum Message {
    /// Submitter → coordinator: run `campaign` split into `shards` shards.
    Submit {
        /// Catalog name of the campaign to run (e.g. `"quick"`).
        campaign: String,
        /// How many shards to partition the matrix into.
        shards: usize,
    },
    /// Worker → coordinator: this connection executes shards. `name` is
    /// a human-readable label for logs; identity is the connection.
    Register {
        /// Worker label (e.g. `host:pid`).
        name: String,
    },
    /// Worker → coordinator: still alive. Sent on a fixed cadence, also
    /// while a shard is executing.
    Heartbeat,
    /// Coordinator → worker: execute one shard of a job.
    Assign {
        /// Idempotency key of the job this shard belongs to.
        job: String,
        /// Catalog name of the campaign to run.
        campaign: String,
        /// Which shard of how many.
        spec: ShardSpec,
    },
    /// Worker → coordinator: a finished shard, full payload inline.
    ShardDone {
        /// The job key from the [`Message::Assign`] this answers.
        job: String,
        /// The executed shard, same wire format as `repro dist`.
        shard: CampaignShard,
    },
    /// Coordinator → submitter: the merged campaign, bit-identical to a
    /// sequential in-process run.
    Result {
        /// The job's idempotency key.
        job: String,
        /// The merged result.
        result: CampaignResult,
    },
    /// Coordinator → peer: the request cannot be served (unknown
    /// campaign, invalid shard count, failed merge). Terminal for the
    /// connection.
    Reject {
        /// Why.
        message: String,
    },
}

impl Message {
    /// The wire name of this message's type.
    pub fn type_name(&self) -> &'static str {
        match self {
            Message::Submit { .. } => "submit",
            Message::Register { .. } => "register",
            Message::Heartbeat => "heartbeat",
            Message::Assign { .. } => "assign",
            Message::ShardDone { .. } => "shard_done",
            Message::Result { .. } => "result",
            Message::Reject { .. } => "reject",
        }
    }

    /// Serializes the message as one newline-terminated JSON frame.
    pub fn to_frame(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("type");
        w.string(self.type_name());
        match self {
            Message::Submit { campaign, shards } => {
                w.key("campaign");
                w.string(campaign);
                w.key("shards");
                w.number_u64(*shards as u64);
            }
            Message::Register { name } => {
                w.key("name");
                w.string(name);
            }
            Message::Heartbeat => {}
            Message::Assign {
                job,
                campaign,
                spec,
            } => {
                w.key("job");
                w.string(job);
                w.key("campaign");
                w.string(campaign);
                w.key("index");
                w.number_u64(spec.index as u64);
                w.key("count");
                w.number_u64(spec.count as u64);
            }
            Message::ShardDone { job, shard } => {
                w.key("job");
                w.string(job);
                w.key("shard");
                w.raw(&shard.to_json());
            }
            Message::Result { job, result } => {
                w.key("job");
                w.string(job);
                w.key("result");
                w.raw(&result.to_json());
            }
            Message::Reject { message } => {
                w.key("message");
                w.string(message);
            }
        }
        w.end_object();
        let mut frame = w.finish();
        frame.push('\n');
        frame
    }

    /// Parses a message from a parsed frame document.
    pub fn from_json_value(doc: &JsonValue) -> Result<Message, WireError> {
        let kind = doc.req_str("type")?;
        match kind {
            "submit" => Ok(Message::Submit {
                campaign: doc.req_str("campaign")?.to_string(),
                shards: doc.req_u64("shards")? as usize,
            }),
            "register" => Ok(Message::Register {
                name: doc.req_str("name")?.to_string(),
            }),
            "heartbeat" => Ok(Message::Heartbeat),
            "assign" => {
                let spec = ShardSpec {
                    index: doc.req_u64("index")? as usize,
                    count: doc.req_u64("count")? as usize,
                };
                spec.validate().map_err(|e| WireError::new(e.to_string()))?;
                Ok(Message::Assign {
                    job: doc.req_str("job")?.to_string(),
                    campaign: doc.req_str("campaign")?.to_string(),
                    spec,
                })
            }
            "shard_done" => Ok(Message::ShardDone {
                job: doc.req_str("job")?.to_string(),
                shard: CampaignShard::from_json_value(doc.req("shard")?)?,
            }),
            "result" => Ok(Message::Result {
                job: doc.req_str("job")?.to_string(),
                result: CampaignResult::from_json_value(doc.req("result")?)?,
            }),
            "reject" => Ok(Message::Reject {
                message: doc.req_str("message")?.to_string(),
            }),
            other => Err(WireError::new(format!("unknown message type {other:?}"))),
        }
    }

    /// Parses one frame (without or with its trailing newline).
    pub fn parse_frame(line: &str) -> Result<Message, ProtoError> {
        let line = line.trim_end_matches(['\r', '\n']);
        let doc = JsonValue::parse(line).map_err(|e| ProtoError::Malformed(e.to_string()))?;
        Message::from_json_value(&doc).map_err(ProtoError::Wire)
    }
}

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The connection ended mid-frame: bytes arrived after the last
    /// newline, then EOF. A clean EOF (no partial line) is *not* an
    /// error — [`read_message`] reports it as `Ok(None)`.
    Truncated {
        /// How many bytes of the unterminated frame arrived.
        bytes: usize,
    },
    /// The line is not valid JSON.
    Malformed(String),
    /// The document is valid JSON but not a valid message (missing or
    /// mistyped field, unknown `"type"`).
    Wire(WireError),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
            ProtoError::Truncated { bytes } => {
                write!(
                    f,
                    "connection closed mid-frame ({bytes} bytes unterminated)"
                )
            }
            ProtoError::Malformed(e) => write!(f, "malformed frame: {e}"),
            ProtoError::Wire(e) => write!(f, "invalid message: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Reads one frame from `reader`. `Ok(None)` is a clean end of stream
/// (the peer closed between frames); a partial trailing line is a
/// [`ProtoError::Truncated`].
pub fn read_message(reader: &mut impl BufRead) -> Result<Option<Message>, ProtoError> {
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if !line.ends_with('\n') {
        return Err(ProtoError::Truncated { bytes: n });
    }
    Message::parse_frame(&line).map(Some)
}

/// Writes one frame to `writer` and flushes it, so a message is either
/// fully on the wire or not sent at all from the peer's perspective.
pub fn write_message(writer: &mut impl Write, msg: &Message) -> io::Result<()> {
    writer.write_all(msg.to_frame().as_bytes())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn control_frames_round_trip() {
        let originals = [
            Message::Submit {
                campaign: "quick".into(),
                shards: 4,
            },
            Message::Register {
                name: "host:42".into(),
            },
            Message::Heartbeat,
            Message::Assign {
                job: "ab12".into(),
                campaign: "quick".into(),
                spec: ShardSpec { index: 1, count: 4 },
            },
            Message::Reject {
                message: "unknown campaign \"nope\"".into(),
            },
        ];
        for msg in originals {
            let frame = msg.to_frame();
            assert!(frame.ends_with('\n'));
            assert!(!frame[..frame.len() - 1].contains('\n'), "one line only");
            let parsed = Message::parse_frame(&frame).expect("round trip");
            assert_eq!(parsed.to_frame(), frame, "byte-identical re-emission");
        }
    }

    #[test]
    fn stream_reading_separates_frames_and_reports_clean_eof() {
        let bytes = format!(
            "{}{}",
            Message::Heartbeat.to_frame(),
            Message::Register { name: "w".into() }.to_frame()
        );
        let mut r = BufReader::new(bytes.as_bytes());
        assert!(matches!(
            read_message(&mut r).unwrap(),
            Some(Message::Heartbeat)
        ));
        assert!(matches!(
            read_message(&mut r).unwrap(),
            Some(Message::Register { .. })
        ));
        assert!(read_message(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_and_malformed_frames_are_typed_errors() {
        let mut r = BufReader::new(&b"{\"type\":\"heartbeat\""[..]);
        assert!(matches!(
            read_message(&mut r),
            Err(ProtoError::Truncated { bytes: 19 })
        ));

        let mut r = BufReader::new(&b"not json\n"[..]);
        assert!(matches!(
            read_message(&mut r),
            Err(ProtoError::Malformed(_))
        ));

        let mut r = BufReader::new(&b"{\"type\":\"warp\"}\n"[..]);
        match read_message(&mut r) {
            Err(ProtoError::Wire(e)) => assert!(e.to_string().contains("warp"), "{e}"),
            other => panic!("expected a wire error, got {other:?}"),
        }
    }

    #[test]
    fn assign_rejects_invalid_shard_specs() {
        let err = Message::parse_frame(
            "{\"type\":\"assign\",\"job\":\"j\",\"campaign\":\"quick\",\"index\":4,\"count\":4}\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("shard"), "{err}");
    }
}
