//! Deadline clock abstraction for the dispatcher.
//!
//! Worker liveness is judged by wall-clock deadlines ("no heartbeat for
//! `worker_timeout_ms`"), which makes the coordinator's re-queue logic
//! untestable against real time: a test that *waits* for a timeout is
//! slow, and one that doesn't never exercises the path. The coordinator
//! therefore never reads the system clock directly — every
//! [`handle`](super::coordinator::Coordinator::handle) call is passed a
//! millisecond timestamp, and the serve shell obtains it from a [`Clock`].
//! Production uses [`SystemClock`]; the lifecycle tests drive the same
//! state machine with a [`FakeClock`] advanced by hand, so the
//! heartbeat-timeout → re-queue path runs in microseconds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic millisecond clock.
///
/// Only *differences* between readings are meaningful; the origin is
/// arbitrary (process start for [`SystemClock`], zero for [`FakeClock`]).
pub trait Clock: Send + Sync {
    /// Milliseconds since this clock's origin.
    fn now_ms(&self) -> u64;
}

/// The real clock: milliseconds since the clock was created, measured on
/// [`Instant`] so it is monotonic (never jumps backwards on NTP steps).
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }
}

/// A hand-advanced clock for tests: starts at zero, moves only when told
/// to. Shareable across threads (`Arc<FakeClock>`); advancing is atomic.
#[derive(Debug, Default)]
pub struct FakeClock {
    now_ms: AtomicU64,
}

impl FakeClock {
    /// A fake clock reading zero.
    pub fn new() -> Self {
        FakeClock::default()
    }

    /// Moves the clock forward by `ms`.
    pub fn advance(&self, ms: u64) {
        self.now_ms.fetch_add(ms, Ordering::SeqCst);
    }
}

impl Clock for FakeClock {
    fn now_ms(&self) -> u64 {
        self.now_ms.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
    }

    #[test]
    fn fake_clock_moves_only_by_hand() {
        let c = FakeClock::new();
        assert_eq!(c.now_ms(), 0);
        c.advance(250);
        c.advance(750);
        assert_eq!(c.now_ms(), 1000);
    }
}
