//! The worker half of the dispatcher: connect, register with declared
//! capabilities, execute assigned shards, heartbeat throughout.
//!
//! A worker is deliberately dumb: it holds no job state, just a
//! [`ShardRunner`] mapping `(campaign name, shard spec)` to an executed
//! [`CampaignShard`] for catalog jobs — scenario jobs carry their whole
//! matrix in the `assign` frame and are executed directly from the
//! document ([`Scenario::campaign`](crate::scenario::Scenario::campaign)
//! then [`run_shard`](crate::campaign::Campaign::run_shard)), no
//! runner involved. Everything hard — liveness, re-queue, dedup — lives in the
//! coordinator; a worker that dies mid-shard simply stops heartbeating
//! and the coordinator hands its shard to someone else. Because delivery
//! is at-least-once, a worker may legitimately be asked to run a shard
//! another worker already completed; it runs it anyway and the
//! coordinator drops the duplicate.
//!
//! Registration declares [`WorkerCaps`] — cores, pinning, AVX2, wire
//! formats, scenario support — which the coordinator's assignment
//! respects: a worker registered with `scenarios: false` is never handed
//! a scenario shard.
//!
//! Heartbeats are sent from a separate thread on a fixed cadence so they
//! keep flowing *while a shard executes* — the whole point: a worker
//! crunching a 10-minute shard is alive, not dead. Frame writes go
//! through one mutex so a heartbeat can never interleave bytes into the
//! middle of a `shard_done` frame.

use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::binwire::WireFormat;
use crate::campaign::{CampaignShard, ShardSpec};

use super::proto::{write_message, write_message_wire, FrameReader, JobSpec, Message, WorkerCaps};
use super::DispatchError;

/// Executes one shard of a named catalog campaign. The `Err` string
/// travels into worker logs (the worker disconnects on it, which is what
/// re-queues the shard).
pub trait ShardRunner {
    /// Runs shard `spec` of the campaign named `campaign`.
    fn run(&mut self, campaign: &str, spec: ShardSpec) -> Result<CampaignShard, String>;
}

impl<F> ShardRunner for F
where
    F: FnMut(&str, ShardSpec) -> Result<CampaignShard, String>,
{
    fn run(&mut self, campaign: &str, spec: ShardSpec) -> Result<CampaignShard, String> {
        self(campaign, spec)
    }
}

/// Worker identity, capabilities and cadence.
#[derive(Clone, Debug)]
pub struct WorkerOptions {
    /// Label sent in [`Message::Register`]; shows up in coordinator logs.
    pub name: String,
    /// Capabilities declared at registration; drives the coordinator's
    /// capability-aware assignment. Defaults to probing the host
    /// ([`WorkerCaps::detect`]).
    pub caps: WorkerCaps,
    /// Heartbeat cadence. Keep well below the coordinator's
    /// `worker_timeout_ms` (the serve CLI uses timeout / 4).
    pub heartbeat_interval_ms: u64,
    /// Encoding for the `shard_done` frames this worker emits. Control
    /// frames are always JSON; the read side negotiates per frame, so
    /// this only picks the emit path.
    pub wire: WireFormat,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            name: format!("worker:{}", std::process::id()),
            caps: WorkerCaps::detect(),
            heartbeat_interval_ms: 1_000,
            wire: WireFormat::default(),
        }
    }
}

/// What a completed worker run did.
#[derive(Copy, Clone, Debug)]
pub struct WorkerSummary {
    /// Shards executed and delivered.
    pub shards_run: usize,
}

/// Connects to a coordinator and serves shards until the coordinator
/// closes the connection (clean EOF → `Ok`), the transport fails, or the
/// runner errors on a shard.
pub fn run_worker(
    addr: impl ToSocketAddrs,
    opts: &WorkerOptions,
    runner: &mut dyn ShardRunner,
) -> Result<WorkerSummary, DispatchError> {
    let stream = TcpStream::connect(addr)?;
    let reader = stream.try_clone()?;
    let writer = Arc::new(Mutex::new(stream));
    {
        let mut w = writer.lock().expect("frame writer");
        write_message(
            &mut *w,
            &Message::Register {
                name: opts.name.clone(),
                caps: opts.caps.clone(),
            },
        )?;
    }

    // Heartbeat thread: one frame per cadence tick, through the shared
    // writer lock, until the main loop says stop or a write fails
    // (coordinator gone — the main read loop will see it too).
    let stop = Arc::new(AtomicBool::new(false));
    let beat = {
        let writer = Arc::clone(&writer);
        let stop = Arc::clone(&stop);
        let interval = Duration::from_millis(opts.heartbeat_interval_ms.max(1));
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(interval);
                let mut w = writer.lock().expect("frame writer");
                if write_message(&mut *w, &Message::Heartbeat).is_err() {
                    return;
                }
            }
        })
    };

    let result = worker_loop(reader, &writer, runner, opts.wire);
    stop.store(true, Ordering::SeqCst);
    // Unblock the coordinator side promptly; the heartbeat thread exits
    // on its next tick either way.
    let _ = writer
        .lock()
        .expect("frame writer")
        .shutdown(std::net::Shutdown::Both);
    let _ = beat.join();
    result
}

/// Executes one assigned shard: catalog work through the runner,
/// scenario work directly from the document (the matrix it declares is
/// the matrix that runs — no catalog lookup, no re-encoding).
fn execute(
    runner: &mut dyn ShardRunner,
    work: &JobSpec,
    spec: ShardSpec,
) -> Result<CampaignShard, DispatchError> {
    match work {
        JobSpec::Catalog(campaign) => {
            runner
                .run(campaign, spec)
                .map_err(|e| DispatchError::Runner {
                    campaign: campaign.clone(),
                    spec,
                    message: e,
                })
        }
        JobSpec::Scenario(s) => {
            let workloads = s.workloads();
            s.campaign(&workloads)
                .run_shard(spec)
                .map_err(|e| DispatchError::Runner {
                    campaign: s.name.clone(),
                    spec,
                    message: e.to_string(),
                })
        }
    }
}

fn worker_loop(
    reader: TcpStream,
    writer: &Mutex<TcpStream>,
    runner: &mut dyn ShardRunner,
    wire: WireFormat,
) -> Result<WorkerSummary, DispatchError> {
    let mut reader = FrameReader::new(BufReader::new(reader));
    let mut shards_run = 0usize;
    loop {
        match reader.next_message().map_err(DispatchError::Proto)? {
            None => {
                // Coordinator closed the connection: done serving.
                return Ok(WorkerSummary { shards_run });
            }
            Some(Message::Assign { job, work, spec }) => {
                let shard = execute(runner, &work, spec)?;
                let mut w = writer.lock().expect("frame writer");
                write_message_wire(&mut *w, &Message::ShardDone { job, shard }, wire)?;
                shards_run += 1;
            }
            Some(Message::Reject { reason, message }) => {
                return Err(DispatchError::Rejected { reason, message });
            }
            Some(other) => {
                return Err(DispatchError::Protocol(format!(
                    "coordinator sent an unexpected {:?} frame to a worker",
                    other.type_name()
                )));
            }
        }
    }
}
