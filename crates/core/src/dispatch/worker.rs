//! The worker half of the dispatcher: connect, register with declared
//! capabilities, execute assigned shards, heartbeat throughout.
//!
//! A worker is deliberately dumb: it holds no job state, just a
//! [`ShardRunner`] mapping `(campaign name, shard spec)` to an executed
//! [`CampaignShard`] for catalog jobs — scenario jobs carry their whole
//! matrix in the `assign` frame and are executed directly from the
//! document ([`Scenario::campaign`](crate::scenario::Scenario::campaign)
//! then [`run_shard`](crate::campaign::Campaign::run_shard)), no
//! runner involved. Everything hard — liveness, re-queue, dedup — lives in the
//! coordinator; a worker that dies mid-shard simply stops heartbeating
//! and the coordinator hands its shard to someone else. Because delivery
//! is at-least-once, a worker may legitimately be asked to run a shard
//! another worker already completed; it runs it anyway and the
//! coordinator drops the duplicate.
//!
//! Registration declares [`WorkerCaps`] — cores, pinning, AVX2, wire
//! formats, scenario support — which the coordinator's assignment
//! respects: a worker registered with `scenarios: false` is never handed
//! a scenario shard.
//!
//! Heartbeats are sent from a separate thread on a fixed cadence so they
//! keep flowing *while a shard executes* — the whole point: a worker
//! crunching a 10-minute shard is alive, not dead. Frame writes go
//! through one mutex so a heartbeat can never interleave bytes into the
//! middle of a `shard_done` frame.

use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::binwire::WireFormat;
use crate::campaign::{CampaignShard, ShardCheckpoint, ShardSpec};
use crate::error::ConfigError;

use super::proto::{write_message, write_message_wire, FrameReader, JobSpec, Message, WorkerCaps};
use super::DispatchError;

/// Executes one shard of a named catalog campaign. The `Err` string
/// travels into worker logs (the worker disconnects on it, which is what
/// re-queues the shard).
pub trait ShardRunner {
    /// Runs shard `spec` of the campaign named `campaign`.
    fn run(&mut self, campaign: &str, spec: ShardSpec) -> Result<CampaignShard, String>;

    /// Runs shard `spec`, optionally resuming from `checkpoint` and
    /// reporting progress through `on_cell` after each completed cell.
    ///
    /// The default ignores both and calls [`run`](ShardRunner::run) —
    /// a runner without resume support stays correct, it just re-runs
    /// from the first cell and never checkpoints. Runners backed by
    /// [`Campaign::run_shard_resumable`](crate::campaign::Campaign::run_shard_resumable)
    /// should forward to it; a checkpoint that does not match the shard
    /// should fall back to a fresh run, never fail the worker.
    fn run_resumable(
        &mut self,
        campaign: &str,
        spec: ShardSpec,
        checkpoint: Option<ShardCheckpoint>,
        on_cell: &mut dyn FnMut(&ShardCheckpoint),
    ) -> Result<CampaignShard, String> {
        let _ = (checkpoint, on_cell);
        self.run(campaign, spec)
    }
}

impl<F> ShardRunner for F
where
    F: FnMut(&str, ShardSpec) -> Result<CampaignShard, String>,
{
    fn run(&mut self, campaign: &str, spec: ShardSpec) -> Result<CampaignShard, String> {
        self(campaign, spec)
    }
}

/// Worker identity, capabilities and cadence.
#[derive(Clone, Debug)]
pub struct WorkerOptions {
    /// Label sent in [`Message::Register`]; shows up in coordinator logs.
    pub name: String,
    /// Capabilities declared at registration; drives the coordinator's
    /// capability-aware assignment. Defaults to probing the host
    /// ([`WorkerCaps::detect`]).
    pub caps: WorkerCaps,
    /// Heartbeat cadence. Keep well below the coordinator's
    /// `worker_timeout_ms` (the serve CLI uses timeout / 4).
    pub heartbeat_interval_ms: u64,
    /// Encoding for the `shard_done` frames this worker emits. Control
    /// frames are always JSON; the read side negotiates per frame, so
    /// this only picks the emit path.
    pub wire: WireFormat,
    /// Send an advisory `checkpoint` frame (protocol v2.1) after every
    /// this many completed cells, so the coordinator can resume this
    /// shard elsewhere if the worker dies. `0` disables checkpointing —
    /// a v2 coordinator never sees the frame.
    pub checkpoint_every_cells: usize,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            name: format!("worker:{}", std::process::id()),
            caps: WorkerCaps::detect(),
            heartbeat_interval_ms: 1_000,
            wire: WireFormat::default(),
            checkpoint_every_cells: 1,
        }
    }
}

/// What a completed worker run did.
#[derive(Copy, Clone, Debug)]
pub struct WorkerSummary {
    /// Shards executed and delivered.
    pub shards_run: usize,
}

/// Connects to a coordinator and serves shards until the coordinator
/// closes the connection (clean EOF → `Ok`), the transport fails, or the
/// runner errors on a shard.
pub fn run_worker(
    addr: impl ToSocketAddrs,
    opts: &WorkerOptions,
    runner: &mut dyn ShardRunner,
) -> Result<WorkerSummary, DispatchError> {
    let stream = TcpStream::connect(addr)?;
    let reader = stream.try_clone()?;
    let writer = Arc::new(Mutex::new(stream));
    {
        let mut w = writer.lock().expect("frame writer");
        write_message(
            &mut *w,
            &Message::Register {
                name: opts.name.clone(),
                caps: opts.caps.clone(),
            },
        )?;
    }

    // Heartbeat thread: one frame per cadence tick, through the shared
    // writer lock, until the main loop says stop or a write fails
    // (coordinator gone — the main read loop will see it too).
    let stop = Arc::new(AtomicBool::new(false));
    let beat = {
        let writer = Arc::clone(&writer);
        let stop = Arc::clone(&stop);
        let interval = Duration::from_millis(opts.heartbeat_interval_ms.max(1));
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(interval);
                let mut w = writer.lock().expect("frame writer");
                if write_message(&mut *w, &Message::Heartbeat).is_err() {
                    return;
                }
            }
        })
    };

    let result = worker_loop(reader, &writer, runner, opts);
    stop.store(true, Ordering::SeqCst);
    // Unblock the coordinator side promptly; the heartbeat thread exits
    // on its next tick either way.
    let _ = writer
        .lock()
        .expect("frame writer")
        .shutdown(std::net::Shutdown::Both);
    let _ = beat.join();
    result
}

/// Executes one assigned shard: catalog work through the runner,
/// scenario work directly from the document (the matrix it declares is
/// the matrix that runs — no catalog lookup, no re-encoding). A resume
/// checkpoint is an optimization, never a hazard: one that does not
/// match the matrix (scenario drift across coordinator restarts, say)
/// falls back to a fresh run instead of failing the worker.
fn execute(
    runner: &mut dyn ShardRunner,
    work: &JobSpec,
    spec: ShardSpec,
    checkpoint: Option<ShardCheckpoint>,
    on_cell: &mut dyn FnMut(&ShardCheckpoint),
) -> Result<CampaignShard, DispatchError> {
    match work {
        JobSpec::Catalog(campaign) => runner
            .run_resumable(campaign, spec, checkpoint, on_cell)
            .map_err(|e| DispatchError::Runner {
                campaign: campaign.clone(),
                spec,
                message: e,
            }),
        JobSpec::Scenario(s) => {
            let workloads = s.workloads();
            let campaign = s.campaign(&workloads);
            let run = match campaign.run_shard_resumable(spec, checkpoint, on_cell) {
                Err(ConfigError::CheckpointMismatch { .. }) => {
                    campaign.run_shard_resumable(spec, None, on_cell)
                }
                other => other,
            };
            run.map_err(|e| DispatchError::Runner {
                campaign: s.name.clone(),
                spec,
                message: e.to_string(),
            })
        }
    }
}

fn worker_loop(
    reader: TcpStream,
    writer: &Mutex<TcpStream>,
    runner: &mut dyn ShardRunner,
    opts: &WorkerOptions,
) -> Result<WorkerSummary, DispatchError> {
    let wire = opts.wire;
    let mut reader = FrameReader::new(BufReader::new(reader));
    let mut shards_run = 0usize;
    loop {
        match reader.next_message().map_err(DispatchError::Proto)? {
            None => {
                // Coordinator closed the connection: done serving.
                return Ok(WorkerSummary { shards_run });
            }
            Some(Message::Assign {
                job,
                work,
                spec,
                checkpoint,
            }) => {
                // Advisory progress frames, through the same writer lock
                // as heartbeats. A failed send is ignored here: losing a
                // checkpoint costs re-simulation only, and if the
                // coordinator is truly gone the `shard_done` write (or
                // the read loop) surfaces it.
                let every = opts.checkpoint_every_cells;
                let mut cells_done = 0usize;
                let mut on_cell = |ckpt: &ShardCheckpoint| {
                    cells_done += 1;
                    if every == 0 || !cells_done.is_multiple_of(every) {
                        return;
                    }
                    let frame = Message::Checkpoint {
                        job: job.clone(),
                        checkpoint: ckpt.clone(),
                    };
                    let mut w = writer.lock().expect("frame writer");
                    let _ = write_message_wire(&mut *w, &frame, wire);
                };
                let shard = execute(runner, &work, spec, checkpoint, &mut on_cell)?;
                let mut w = writer.lock().expect("frame writer");
                write_message_wire(&mut *w, &Message::ShardDone { job, shard }, wire)?;
                shards_run += 1;
            }
            Some(Message::Reject { reason, message }) => {
                return Err(DispatchError::Rejected { reason, message });
            }
            Some(other) => {
                return Err(DispatchError::Protocol(format!(
                    "coordinator sent an unexpected {:?} frame to a worker",
                    other.type_name()
                )));
            }
        }
    }
}
