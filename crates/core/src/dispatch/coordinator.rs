//! The coordinator: a pure job-lifecycle state machine plus its TCP shell.
//!
//! # The state machine
//!
//! [`Coordinator`] holds every piece of dispatcher state — jobs, the
//! worker fleet, the idempotent result cache, the per-submitter rate
//! limiter — and mutates it only through [`handle`](Coordinator::handle):
//! one event in (a decoded frame, a connect, a disconnect, a clock
//! tick), a list of [`Action`]s out. It performs **no I/O and reads no
//! clock**: the caller supplies the timestamp with every event, which is
//! what makes the failure paths (heartbeat timeout → re-queue, straggler
//! deadline → duplicate assignment, empty token bucket → typed reject)
//! testable on a [`FakeClock`](super::clock::FakeClock) without a socket
//! or a sleep in sight.
//!
//! # The job lifecycle
//!
//! A submission carries a [`JobSpec`] — a catalog name or a full
//! scenario document — and is keyed by [`job_key`] over the spec's
//! canonical text, so retrying a submission (same work, same shard
//! count) attaches to the in-flight job or returns the cached result
//! instead of running the matrix twice. A new job's shards enter a FIFO
//! queue; idle registered workers whose declared
//! [`WorkerCaps`] can execute the job are assigned one shard
//! each; completions fill per-index slots. Delivery is
//! **at-least-once**: a dead worker's shard is re-queued, a straggler's
//! shard is re-assigned while the original may still finish — so the
//! same shard index can legitimately complete twice. The slot either-or
//! makes duplicates harmless (first completion wins, the rest are
//! dropped), and [`merge`](crate::campaign::merge())'s typed
//! `DuplicateShard`/`DuplicateCell` errors remain the backstop if that
//! invariant is ever broken. When every slot is full, the shards merge
//! into a [`CampaignResult`](crate::campaign::CampaignResult)
//! bit-identical to a sequential run; a scenario job's assertions are
//! then evaluated against the merged result, and every waiting submitter
//! receives the result plus the per-assertion diagnostics.
//!
//! # Admission control
//!
//! Two policies guard the coordinator, both pure state over the injected
//! timestamps. A **token bucket per submitter identity** (peer IP in
//! production, `conn:<id>` for shells that never report one): a
//! submission takes one token, the bucket refills one token per
//! [`DispatchConfig::submit_refill_ms`] up to
//! [`DispatchConfig::submit_burst`], and an empty bucket is a typed
//! [`RejectReason::RateLimited`]. Buckets survive disconnects on
//! purpose — reconnecting must not refill them. A **bounded pending-job
//! queue**: at most [`DispatchConfig::max_pending_jobs`] distinct jobs
//! in flight; beyond it, *new* jobs are [`RejectReason::QueueFull`]
//! (attaching to an existing job or replaying a cached result is always
//! admitted — neither grows state).
//!
//! # The TCP shell
//!
//! [`Server`] is the thin I/O layer: one reader thread per connection
//! feeding a channel, one loop draining it into the state machine and
//! writing the resulting frames back out. All policy lives in the state
//! machine; the shell only moves bytes (and reports each connection's
//! peer IP so the rate limiter has an identity to key on).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::campaign::{fnv64, merge, CampaignShard, ShardCheckpoint, ShardSpec};
use crate::scenario::EvaluatorRegistry;

use super::clock::Clock;
use super::journal::{replay_journal_file, Journal, JournalEntry};
use super::proto::{
    write_message_wire, FrameReader, JobSpec, Message, ProtoError, RejectReason, WorkerCaps,
};
use super::status::{
    AssignmentStatus, JobStatus, RateStatus, StatusCounters, StatusReport, WorkerStatus,
};
use super::DispatchError;
use crate::binwire::WireFormat;

/// Identifies one connection for the state machine's lifetime. The shell
/// allocates these; the state machine never looks inside.
pub type ConnId = u64;

/// Liveness, re-queue and admission policy.
#[derive(Copy, Clone, Debug)]
pub struct DispatchConfig {
    /// A worker silent (no frame of any kind) for longer than this is
    /// dead: it is dropped and its in-flight shard re-queued.
    pub worker_timeout_ms: u64,
    /// Cadence workers send [`Message::Heartbeat`] at. The coordinator
    /// does not enforce it directly — it only feeds `worker_timeout_ms`
    /// — but the serve CLI hands it to workers so the two stay
    /// consistent (timeout is a multiple of the cadence).
    pub heartbeat_interval_ms: u64,
    /// A shard assigned for longer than this is re-queued even if its
    /// worker is still heartbeating (straggler hedge). The original
    /// worker keeps running — whichever completion arrives first wins,
    /// the other is deduplicated. Generous by default: a straggler
    /// re-queue costs a duplicate shard execution.
    pub shard_deadline_ms: u64,
    /// Token-bucket capacity per submitter identity: how many
    /// submissions one submitter may burst before the refill cadence
    /// gates it.
    pub submit_burst: u64,
    /// One token returns to a submitter's bucket per this many
    /// milliseconds (0 disables rate limiting: the bucket snaps back to
    /// `submit_burst` on every submission).
    pub submit_refill_ms: u64,
    /// At most this many distinct jobs in flight; submissions that
    /// would create one more are rejected `queue_full`.
    pub max_pending_jobs: usize,
    /// Once a frame's first byte arrives, the rest must follow within
    /// this deadline or the connection is dropped ([`ProtoError::Stalled`]).
    /// Guards the reader threads against byte-dribbling peers; `0`
    /// disables the deadline.
    pub frame_deadline_ms: u64,
}

impl Default for DispatchConfig {
    fn default() -> Self {
        DispatchConfig {
            worker_timeout_ms: 10_000,
            heartbeat_interval_ms: 1_000,
            shard_deadline_ms: 600_000,
            submit_burst: 10,
            submit_refill_ms: 1_000,
            max_pending_jobs: 64,
            frame_deadline_ms: 30_000,
        }
    }
}

/// What happened, as the shell observed it.
#[derive(Debug)]
pub enum Event {
    /// A connection was accepted; `identity` is the submitter identity
    /// the rate limiter keys on (the peer IP, in the TCP shell). A
    /// connection that never reports one falls back to `conn:<id>`.
    Connected(ConnId, String),
    /// A decoded frame arrived from `ConnId`.
    Message(ConnId, Message),
    /// The connection closed or failed (EOF, transport error, malformed
    /// frame). The shell reports them all the same way: the peer is gone.
    Disconnected(ConnId),
    /// Time passed; re-check deadlines. The shell emits one per poll
    /// interval; tests emit them by hand around fake-clock advances.
    Tick,
}

/// What the shell must do, in order.
#[derive(Debug)]
pub enum Action {
    /// Write one frame to a connection.
    Send(ConnId, Message),
    /// Close a connection (after any preceding sends to it).
    Close(ConnId),
    /// A job finished and its result was delivered. The shell uses this
    /// to honor `--jobs N` run bounds; no I/O is implied.
    JobCompleted {
        /// The finished job's idempotency key.
        job: String,
    },
    /// A worker died (disconnect or heartbeat timeout). Informational —
    /// the shard re-queue already happened; the shell logs it.
    WorkerLost {
        /// The label the worker registered with.
        name: String,
        /// How the loss was detected.
        reason: WorkerLossReason,
        /// The shard that was in flight on the worker, if any (already
        /// back in the queue unless it had completed elsewhere).
        requeued: Option<ShardSpec>,
    },
}

/// How a worker's death was detected.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum WorkerLossReason {
    /// The connection closed or failed.
    Disconnected,
    /// No frame within `worker_timeout_ms`.
    HeartbeatTimeout,
}

impl fmt::Display for WorkerLossReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerLossReason::Disconnected => write!(f, "connection lost"),
            WorkerLossReason::HeartbeatTimeout => write!(f, "heartbeat timeout"),
        }
    }
}

/// The idempotency key of a submission: FNV-1a over
/// `"<canonical work>/<shards>"` — the catalog name, or the scenario's
/// deterministic JSON — rendered as 16 hex digits. Same spec, same key —
/// across submitters, processes and machines — so duplicate submissions
/// coalesce onto one job.
pub fn job_key(work: &str, shards: usize) -> String {
    format!("{:016x}", fnv64(&format!("{work}/{shards}")))
}

/// One submitter's token bucket: all-integer arithmetic over the
/// injected timestamps, so FakeClock tests are exact.
#[derive(Debug)]
struct TokenBucket {
    tokens: u64,
    last_refill_ms: u64,
}

impl TokenBucket {
    fn new(now_ms: u64, burst: u64) -> TokenBucket {
        TokenBucket {
            tokens: burst,
            last_refill_ms: now_ms,
        }
    }

    /// Credits whole elapsed refill intervals, keeping the remainder
    /// (the bucket's epoch advances by the credited intervals only, so
    /// fractional progress toward the next token is never lost).
    fn refill(&mut self, now_ms: u64, burst: u64, refill_ms: u64) {
        if refill_ms == 0 {
            self.tokens = burst;
            self.last_refill_ms = now_ms;
            return;
        }
        let earned = now_ms.saturating_sub(self.last_refill_ms) / refill_ms;
        if earned > 0 {
            self.tokens = self.tokens.saturating_add(earned).min(burst);
            self.last_refill_ms += earned * refill_ms;
        }
    }

    /// What [`refill`](TokenBucket::refill) would leave available,
    /// without mutating — the status report's read-only view.
    fn projected(&self, now_ms: u64, burst: u64, refill_ms: u64) -> u64 {
        if refill_ms == 0 {
            return burst;
        }
        let earned = now_ms.saturating_sub(self.last_refill_ms) / refill_ms;
        self.tokens.saturating_add(earned).min(burst)
    }

    fn try_take(&mut self) -> bool {
        if self.tokens > 0 {
            self.tokens -= 1;
            true
        } else {
            false
        }
    }
}

/// A shard assigned to a worker.
#[derive(Debug)]
struct Assignment {
    job: String,
    spec: ShardSpec,
    since_ms: u64,
    /// Already re-queued by the straggler deadline — don't re-queue again.
    hedged: bool,
}

/// One registered worker.
#[derive(Debug)]
struct WorkerState {
    name: String,
    caps: WorkerCaps,
    last_seen_ms: u64,
    assignment: Option<Assignment>,
}

impl WorkerState {
    /// Whether this worker can execute `work` at all.
    fn eligible(&self, work: &JobSpec) -> bool {
        match work {
            JobSpec::Catalog(_) => true,
            JobSpec::Scenario(_) => self.caps.scenarios,
        }
    }
}

/// One in-flight job.
#[derive(Debug)]
struct Job {
    work: JobSpec,
    count: usize,
    /// Shard indices waiting for a worker.
    queue: VecDeque<usize>,
    /// Completion slots: first finished shard per index wins.
    done: Vec<Option<CampaignShard>>,
    /// Submitter connections awaiting the result.
    waiters: Vec<ConnId>,
    /// Latest resume point per shard index, from advisory `checkpoint`
    /// frames. A re-queued shard is re-assigned with its checkpoint so
    /// the next worker skips the cells already simulated. Entries are
    /// dropped the moment the slot completes.
    checkpoints: BTreeMap<usize, ShardCheckpoint>,
}

impl Job {
    fn complete(&self) -> bool {
        self.done.iter().all(Option::is_some)
    }
}

/// The dispatcher's entire state; see the module docs for the lifecycle.
pub struct Coordinator {
    cfg: DispatchConfig,
    /// Campaign names this coordinator accepts.
    catalog: Vec<String>,
    jobs: BTreeMap<String, Job>,
    workers: BTreeMap<ConnId, WorkerState>,
    /// Serialized results of finished jobs, by job key — the idempotency
    /// cache. A re-submission of a finished spec is answered from here
    /// without touching a worker.
    finished: BTreeMap<String, Message>,
    /// Submitter identity per connection, reported by the shell at
    /// accept; removed on disconnect.
    peers: BTreeMap<ConnId, String>,
    /// Token buckets by submitter identity. Never pruned on disconnect:
    /// a reconnect must find the bucket it drained.
    buckets: BTreeMap<String, TokenBucket>,
    /// Judges scenario assertions against merged results.
    registry: EvaluatorRegistry,
    counters: StatusCounters,
}

/// Upper bound on the shard count of one submission; far beyond any real
/// fleet, it only keeps a hostile submitter from making the coordinator
/// allocate unbounded queues.
pub const MAX_SHARDS: usize = 4096;

impl Coordinator {
    /// A coordinator accepting the campaign names in `catalog` (scenario
    /// submissions are always accepted — they carry their own matrix).
    pub fn new(cfg: DispatchConfig, catalog: impl IntoIterator<Item = String>) -> Self {
        Coordinator {
            cfg,
            catalog: catalog.into_iter().collect(),
            jobs: BTreeMap::new(),
            workers: BTreeMap::new(),
            finished: BTreeMap::new(),
            peers: BTreeMap::new(),
            buckets: BTreeMap::new(),
            registry: EvaluatorRegistry::with_defaults(),
            counters: StatusCounters::default(),
        }
    }

    /// Registered workers currently alive.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Jobs with unmerged shards.
    pub fn open_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Advances the state machine by one event observed at `now_ms`.
    pub fn handle(&mut self, now_ms: u64, event: Event) -> Vec<Action> {
        let mut actions = Vec::new();
        match event {
            Event::Connected(conn, identity) => {
                self.peers.insert(conn, identity);
            }
            Event::Message(conn, msg) => self.on_message(now_ms, conn, msg, &mut actions),
            Event::Disconnected(conn) => self.on_disconnect(conn, &mut actions),
            Event::Tick => {}
        }
        self.reap_dead_workers(now_ms, &mut actions);
        self.hedge_stragglers(now_ms);
        self.assign_pending(now_ms, &mut actions);
        actions
    }

    /// The identity a connection's submissions are rate-limited under.
    fn identity(&self, conn: ConnId) -> String {
        self.peers
            .get(&conn)
            .cloned()
            .unwrap_or_else(|| format!("conn:{conn}"))
    }

    /// One refusal: typed reject frame, close, counted.
    fn reject(
        &mut self,
        conn: ConnId,
        reason: RejectReason,
        message: String,
        actions: &mut Vec<Action>,
    ) {
        self.counters.rejections += 1;
        actions.push(Action::Send(conn, Message::Reject { reason, message }));
        actions.push(Action::Close(conn));
    }

    fn on_message(&mut self, now_ms: u64, conn: ConnId, msg: Message, actions: &mut Vec<Action>) {
        if let Some(w) = self.workers.get_mut(&conn) {
            w.last_seen_ms = now_ms;
        }
        match msg {
            Message::Submit { work, shards } => self.on_submit(now_ms, conn, work, shards, actions),
            Message::Register { name, caps } => {
                // Registration refreshes name/caps but must carry any
                // in-flight assignment over: a duplicated register frame
                // that reset the slot to idle would leak the assigned
                // shard out of queued/running/done for good.
                let assignment = self.workers.remove(&conn).and_then(|w| w.assignment);
                self.workers.insert(
                    conn,
                    WorkerState {
                        name,
                        caps,
                        last_seen_ms: now_ms,
                        assignment,
                    },
                );
            }
            Message::Heartbeat => {}
            Message::ShardDone { job, shard } => self.on_shard_done(conn, job, shard, actions),
            Message::Checkpoint { job, checkpoint } => self.on_checkpoint(job, checkpoint),
            Message::StatusRequest => {
                // Answered in place; the connection stays open so a
                // watcher can poll on one socket.
                actions.push(Action::Send(
                    conn,
                    Message::Status {
                        report: self.status(now_ms),
                    },
                ));
            }
            // Coordinator-bound connections have no business sending
            // coordinator-to-peer messages; drop them.
            Message::Assign { .. }
            | Message::Result { .. }
            | Message::Reject { .. }
            | Message::Status { .. } => {
                self.reject(
                    conn,
                    RejectReason::Protocol,
                    "unexpected message direction".to_string(),
                    actions,
                );
            }
        }
    }

    fn on_submit(
        &mut self,
        now_ms: u64,
        conn: ConnId,
        work: JobSpec,
        shards: usize,
        actions: &mut Vec<Action>,
    ) {
        // Admission first: the rate limiter sees every submission,
        // including invalid and replayed ones — a hot submitter must not
        // dodge the limiter by hammering the cache.
        let identity = self.identity(conn);
        let (burst, refill_ms) = (self.cfg.submit_burst, self.cfg.submit_refill_ms);
        let bucket = self
            .buckets
            .entry(identity)
            .or_insert_with(|| TokenBucket::new(now_ms, burst));
        bucket.refill(now_ms, burst, refill_ms);
        if !bucket.try_take() {
            self.reject(
                conn,
                RejectReason::RateLimited,
                format!(
                    "rate limited: burst {burst} exhausted, one token returns every {refill_ms} ms"
                ),
                actions,
            );
            return;
        }
        if let JobSpec::Catalog(name) = &work {
            if !self.catalog.contains(name) {
                self.reject(
                    conn,
                    RejectReason::UnknownCampaign,
                    format!("unknown campaign {name:?}"),
                    actions,
                );
                return;
            }
        }
        if shards == 0 || shards > MAX_SHARDS {
            self.reject(
                conn,
                RejectReason::InvalidShards,
                format!("shard count {shards} outside 1..={MAX_SHARDS}"),
                actions,
            );
            return;
        }
        let key = job_key(&work.canonical(), shards);
        if let Some(result) = self.finished.get(&key) {
            // Idempotent replay: answered from the cache, no worker touched.
            self.counters.submissions += 1;
            actions.push(Action::Send(conn, result.clone()));
            actions.push(Action::Close(conn));
            return;
        }
        if !self.jobs.contains_key(&key) && self.jobs.len() >= self.cfg.max_pending_jobs {
            self.reject(
                conn,
                RejectReason::QueueFull,
                format!(
                    "pending-job queue full ({} jobs in flight, cap {})",
                    self.jobs.len(),
                    self.cfg.max_pending_jobs
                ),
                actions,
            );
            return;
        }
        self.counters.submissions += 1;
        self.jobs
            .entry(key)
            .or_insert_with(|| Job {
                work,
                count: shards,
                queue: (0..shards).collect(),
                done: (0..shards).map(|_| None).collect(),
                waiters: Vec::new(),
                checkpoints: BTreeMap::new(),
            })
            .waiters
            .push(conn);
    }

    fn on_shard_done(
        &mut self,
        conn: ConnId,
        job_id: String,
        shard: CampaignShard,
        actions: &mut Vec<Action>,
    ) {
        // The worker is idle again — but only if this delivery answers
        // its *current* assignment. A duplicated `shard_done` (network
        // dup, or a straggler answering after a hedge) arriving after the
        // worker was handed its next shard must not wipe that in-flight
        // assignment: the slot is the only record of the new shard, and
        // clearing it here would leak the shard out of queued/running/done
        // entirely if the connection then died before delivering it.
        if let Some(w) = self.workers.get_mut(&conn) {
            if w.assignment
                .as_ref()
                .is_some_and(|a| a.job == job_id && a.spec == shard.spec())
            {
                w.assignment = None;
            }
        }
        let Some(job) = self.jobs.get_mut(&job_id) else {
            // Unknown or already-finished job — a straggler's duplicate
            // after the merge. At-least-once delivery makes this normal.
            return;
        };
        let spec = shard.spec();
        if spec.count != job.count || spec.index >= job.count {
            // A shard of some other partitioning cannot tile this job.
            return;
        }
        let slot = &mut job.done[spec.index];
        if slot.is_none() {
            *slot = Some(shard);
            self.counters.shards_completed += 1;
            // The shard is finished: its resume point is obsolete, and a
            // still-queued copy (hedge, or journal replay with no workers
            // to drain the queue) would only re-run completed work.
            job.checkpoints.remove(&spec.index);
            job.queue.retain(|&queued| queued != spec.index);
        }
        // else: duplicate completion from a hedged straggler — first one
        // won, this one is dropped (merge's DuplicateShard is the backstop).
        if job.complete() {
            let job = self.jobs.remove(&job_id).expect("checked present");
            let outcome = match merge(job.done.into_iter().flatten()) {
                // The merged result is bit-identical to a sequential run;
                // a scenario job's assertions are judged against it here,
                // so every waiter receives the same diagnostics an
                // in-process `repro check` would print.
                Ok(result) => match &job.work {
                    JobSpec::Catalog(_) => Message::Result {
                        job: job_id.clone(),
                        result,
                        outcomes: Vec::new(),
                    },
                    JobSpec::Scenario(s) => match s.evaluate(&result, &self.registry) {
                        Ok(outcomes) => Message::Result {
                            job: job_id.clone(),
                            result,
                            outcomes,
                        },
                        Err(e) => Message::Reject {
                            reason: RejectReason::MergeFailed,
                            message: format!("assertion evaluation failed: {e}"),
                        },
                    },
                },
                // Unreachable while the slot invariant holds; reported as
                // a typed rejection rather than a panic if it ever breaks.
                Err(e) => Message::Reject {
                    reason: RejectReason::MergeFailed,
                    message: format!("merge failed: {e}"),
                },
            };
            self.counters.jobs_completed += 1;
            for waiter in job.waiters {
                actions.push(Action::Send(waiter, outcome.clone()));
                actions.push(Action::Close(waiter));
            }
            self.finished.insert(job_id.clone(), outcome);
            actions.push(Action::JobCompleted { job: job_id });
        }
    }

    /// Records a worker's advisory resume point for an in-flight shard.
    /// Best-effort by design: anything that does not line up (finished
    /// job, foreign partitioning, stale cursor) is silently dropped —
    /// losing a checkpoint only costs re-simulation, never correctness.
    fn on_checkpoint(&mut self, job_id: String, checkpoint: ShardCheckpoint) {
        let Some(job) = self.jobs.get_mut(&job_id) else {
            return;
        };
        let spec = checkpoint.spec();
        if spec.count != job.count || spec.index >= job.count {
            return;
        }
        if job.done[spec.index].is_some() {
            // Completed shards need no resume point.
            return;
        }
        // Keep the furthest progress: a hedged duplicate running behind
        // the original must not roll the resume point back.
        match job.checkpoints.get(&spec.index) {
            Some(existing) if existing.cursor() >= checkpoint.cursor() => {}
            _ => {
                job.checkpoints.insert(spec.index, checkpoint);
            }
        }
    }

    fn on_disconnect(&mut self, conn: ConnId, actions: &mut Vec<Action>) {
        self.peers.remove(&conn);
        if let Some(worker) = self.workers.remove(&conn) {
            let requeued = worker.assignment.as_ref().map(|a| a.spec);
            if let Some(assignment) = worker.assignment {
                self.requeue(assignment);
            }
            actions.push(Action::WorkerLost {
                name: worker.name,
                reason: WorkerLossReason::Disconnected,
                requeued,
            });
        }
        for job in self.jobs.values_mut() {
            job.waiters.retain(|w| *w != conn);
        }
    }

    /// Returns an un-completed, un-hedged assignment's shard to its job's
    /// queue.
    fn requeue(&mut self, assignment: Assignment) {
        if assignment.hedged {
            // The straggler deadline already re-queued this shard.
            return;
        }
        if let Some(job) = self.jobs.get_mut(&assignment.job) {
            let index = assignment.spec.index;
            if job.done[index].is_none() && !job.queue.contains(&index) {
                job.queue.push_back(index);
            }
        }
    }

    /// Drops workers whose last frame is older than the liveness timeout
    /// and re-queues their shards.
    fn reap_dead_workers(&mut self, now_ms: u64, actions: &mut Vec<Action>) {
        let dead: Vec<ConnId> = self
            .workers
            .iter()
            .filter(|(_, w)| now_ms.saturating_sub(w.last_seen_ms) > self.cfg.worker_timeout_ms)
            .map(|(&conn, _)| conn)
            .collect();
        for conn in dead {
            let worker = self.workers.remove(&conn).expect("collected above");
            let requeued = worker.assignment.as_ref().map(|a| a.spec);
            if let Some(assignment) = worker.assignment {
                self.requeue(assignment);
            }
            actions.push(Action::WorkerLost {
                name: worker.name,
                reason: WorkerLossReason::HeartbeatTimeout,
                requeued,
            });
            actions.push(Action::Close(conn));
        }
    }

    /// Re-queues shards that have been assigned for longer than the
    /// straggler deadline, leaving the original worker running (first
    /// completion wins).
    fn hedge_stragglers(&mut self, now_ms: u64) {
        let mut hedged: Vec<Assignment> = Vec::new();
        for worker in self.workers.values_mut() {
            if let Some(a) = worker.assignment.as_mut() {
                if !a.hedged && now_ms.saturating_sub(a.since_ms) > self.cfg.shard_deadline_ms {
                    hedged.push(Assignment {
                        job: a.job.clone(),
                        spec: a.spec,
                        since_ms: a.since_ms,
                        hedged: false,
                    });
                    a.hedged = true;
                }
            }
        }
        for assignment in hedged {
            self.requeue(assignment);
        }
    }

    /// Hands queued shards to idle workers, FIFO over jobs in key order.
    /// Capability-aware: each shard goes to the first idle worker whose
    /// declared caps can execute the job's work; a job no idle worker is
    /// eligible for keeps its queue and yields the workers to the next
    /// job.
    fn assign_pending(&mut self, now_ms: u64, actions: &mut Vec<Action>) {
        let Coordinator { jobs, workers, .. } = self;
        let mut idle: Vec<ConnId> = workers
            .iter()
            .filter(|(_, w)| w.assignment.is_none())
            .map(|(&conn, _)| conn)
            .collect();
        for (job_id, job) in jobs.iter_mut() {
            while !job.queue.is_empty() {
                let Some(pos) = idle
                    .iter()
                    .position(|conn| workers[conn].eligible(&job.work))
                else {
                    break;
                };
                let conn = idle.remove(pos);
                let index = job.queue.pop_front().expect("checked non-empty");
                let spec = ShardSpec {
                    index,
                    count: job.count,
                };
                workers
                    .get_mut(&conn)
                    .expect("idle workers are registered")
                    .assignment = Some(Assignment {
                    job: job_id.clone(),
                    spec,
                    since_ms: now_ms,
                    hedged: false,
                });
                actions.push(Action::Send(
                    conn,
                    Message::Assign {
                        job: job_id.clone(),
                        work: job.work.clone(),
                        spec,
                        checkpoint: job.checkpoints.get(&index).cloned(),
                    },
                ));
            }
        }
    }

    /// Snapshots the fleet as of `now_ms`: what a `status` frame answers
    /// with. Read-only — polling status must not perturb the state
    /// machine (bucket refills are projected, not applied).
    pub fn status(&self, now_ms: u64) -> StatusReport {
        let jobs = self
            .jobs
            .iter()
            .map(|(key, job)| JobStatus {
                key: key.clone(),
                label: job.work.label().to_string(),
                shards: job.count,
                done: job.done.iter().filter(|s| s.is_some()).count(),
                queued: job.queue.len(),
                running: self
                    .workers
                    .values()
                    .filter(|w| w.assignment.as_ref().is_some_and(|a| &a.job == key))
                    .count(),
                waiters: job.waiters.len(),
            })
            .collect();
        let workers = self
            .workers
            .values()
            .map(|w| WorkerStatus {
                name: w.name.clone(),
                cores: w.caps.cores,
                scenarios: w.caps.scenarios,
                last_seen_ms_ago: now_ms.saturating_sub(w.last_seen_ms),
                assignment: w.assignment.as_ref().map(|a| AssignmentStatus {
                    job: a.job.clone(),
                    index: a.spec.index,
                    count: a.spec.count,
                    running_ms: now_ms.saturating_sub(a.since_ms),
                    hedged: a.hedged,
                }),
            })
            .collect();
        let rate = self
            .buckets
            .iter()
            .map(|(peer, bucket)| RateStatus {
                peer: peer.clone(),
                tokens: bucket.projected(now_ms, self.cfg.submit_burst, self.cfg.submit_refill_ms),
            })
            .collect();
        StatusReport {
            now_ms,
            queue_depth: self.jobs.values().map(|j| j.queue.len()).sum(),
            counters: self.counters.clone(),
            jobs,
            workers,
            rate,
        }
    }

    /// Rebuilds durable state from a journal: each recorded frame is
    /// replayed through [`handle`](Coordinator::handle) at its recorded
    /// timestamp (so rate-limit accounting is exact), then every journal
    /// connection is synthetically disconnected — the peers behind them
    /// are gone, and their waiter slots must not leak onto whatever
    /// connections the restarted shell hands out next.
    ///
    /// Only submitter/worker *data* frames are journaled (never
    /// `register`/`heartbeat`), so replay re-creates jobs, completion
    /// slots, checkpoints, the finished-result cache and the token
    /// buckets — but no phantom workers, and `assign_pending` stays a
    /// no-op throughout.
    pub fn replay_journal(&mut self, entries: Vec<JournalEntry>) {
        let mut conns: BTreeSet<ConnId> = BTreeSet::new();
        let mut last_now_ms = 0;
        for entry in entries {
            conns.insert(entry.conn);
            last_now_ms = last_now_ms.max(entry.now_ms);
            self.peers.insert(entry.conn, entry.peer);
            let _ = self.handle(entry.now_ms, Event::Message(entry.conn, entry.msg));
        }
        for conn in conns {
            let _ = self.handle(last_now_ms, Event::Disconnected(conn));
        }
    }

    /// Re-bases every token bucket's refill epoch to `now_ms`, keeping
    /// the replayed token counts. After a restart the journal's
    /// timestamps come from the dead process's clock (the system clock
    /// counts from process start), so elapsed-time credit across the
    /// outage cannot be computed — this conservatively grants none:
    /// peers resume with the tokens they had and earn from now.
    pub fn rebase_buckets(&mut self, now_ms: u64) {
        for bucket in self.buckets.values_mut() {
            bucket.last_refill_ms = now_ms;
        }
    }
}

/// How long a [`Server`] run may keep going, and how it talks.
#[derive(Clone, Debug, Default)]
pub struct ServeOptions {
    /// Stop (cleanly: listener closed, connections dropped) after this
    /// many jobs complete. `None` serves forever.
    pub max_jobs: Option<usize>,
    /// Encoding for the `result` frames this server emits to submitters.
    /// Control frames are always JSON; the read side negotiates per
    /// frame, so workers pick their own `shard_done` encoding.
    pub wire: WireFormat,
    /// Append-only job journal. When set, every durable frame
    /// (`submit`, `shard_done`, `checkpoint`) is fsync'd here *before*
    /// the state machine sees it, and an existing file is replayed
    /// before the listener accepts — so a crashed coordinator restarted
    /// on the same journal resumes its jobs instead of losing them.
    pub journal: Option<PathBuf>,
    /// External stop flag, polled every drain interval. Lets a harness
    /// (the chaos suite, a signal handler) end an unbounded serve
    /// cleanly — or kill one mid-job to exercise the journal.
    pub stop: Option<Arc<AtomicBool>>,
}

/// What a bounded [`Server::run`] did.
#[derive(Copy, Clone, Debug)]
pub struct ServeSummary {
    /// Jobs completed and delivered.
    pub jobs_completed: usize,
}

/// Internal: what a reader or accept thread reports upward.
enum ConnEvent {
    Opened(ConnId, String),
    Frame(ConnId, Message),
    Gone(ConnId, Option<ProtoError>),
}

/// The coordinator's TCP shell. Bind first (so the caller learns the
/// ephemeral port before anything races), then [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    coordinator: Coordinator,
    clock: Arc<dyn Clock>,
}

impl Server {
    /// Binds `addr` and prepares a coordinator for `catalog`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        cfg: DispatchConfig,
        catalog: impl IntoIterator<Item = String>,
        clock: Arc<dyn Clock>,
    ) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            coordinator: Coordinator::new(cfg, catalog),
            clock,
        })
    }

    /// The address actually bound (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until `opts.max_jobs` jobs complete (forever when `None`).
    ///
    /// Reader threads decode frames off each connection into a channel;
    /// this loop drains it into the state machine and performs the
    /// actions. A connection whose peer speaks garbage is treated exactly
    /// like one that died: disconnected, shard re-queued.
    pub fn run(mut self, opts: ServeOptions) -> Result<ServeSummary, DispatchError> {
        // Durability first: replay an existing journal into the state
        // machine before the listener accepts anything, then open it for
        // write-ahead appends. Replayed timestamps belong to the dead
        // process's clock, so bucket epochs are re-based to ours.
        let mut journal = match &opts.journal {
            Some(path) => {
                let entries = replay_journal_file(path).map_err(DispatchError::Io)?;
                if !entries.is_empty() {
                    eprintln!(
                        "dispatch: replayed {} journal record(s) from {}",
                        entries.len(),
                        path.display()
                    );
                    self.coordinator.replay_journal(entries);
                    self.coordinator.rebase_buckets(self.clock.now_ms());
                }
                Some(Journal::open_append(path).map_err(DispatchError::Io)?)
            }
            None => None,
        };

        let (tx, rx) = mpsc::channel::<ConnEvent>();
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Arc<Mutex<BTreeMap<ConnId, TcpStream>>> =
            Arc::new(Mutex::new(BTreeMap::new()));
        // Submitter identity per live connection, mirrored from Opened
        // events so journal records carry the identity the rate limiter
        // will key on at replay.
        let mut identities: BTreeMap<ConnId, String> = BTreeMap::new();

        // Accept loop: non-blocking with a short sleep so the stop flag
        // is honored promptly when the run bound is reached.
        self.listener.set_nonblocking(true)?;
        let frame_deadline_ms = self.coordinator.cfg.frame_deadline_ms;
        let acceptor = {
            let listener = self.listener.try_clone()?;
            let tx = tx.clone();
            let stop = Arc::clone(&stop);
            let writers = Arc::clone(&writers);
            let clock = Arc::clone(&self.clock);
            std::thread::spawn(move || {
                let mut next_id: ConnId = 1;
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let conn = next_id;
                            next_id += 1;
                            // The submitter identity the rate limiter
                            // keys on: the peer IP, not the port, so one
                            // host's reconnects share a bucket.
                            let identity = stream
                                .peer_addr()
                                .map(|a| a.ip().to_string())
                                .unwrap_or_else(|_| "unknown".to_string());
                            if let Ok(write_half) = stream.try_clone() {
                                writers.lock().expect("writer map").insert(conn, write_half);
                                if tx.send(ConnEvent::Opened(conn, identity)).is_err() {
                                    return;
                                }
                                spawn_reader(
                                    conn,
                                    stream,
                                    tx.clone(),
                                    frame_deadline_ms,
                                    Arc::clone(&clock),
                                );
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        Err(e) => {
                            // Per-connection failures (ECONNABORTED: the
                            // peer RST a connection still in the backlog)
                            // surface as accept() errors; a listener that
                            // stopped accepting would strand every future
                            // peer in the backlog, so only the stop flag
                            // ends this loop.
                            eprintln!("dispatch: accept failed (transient): {e}");
                            std::thread::sleep(Duration::from_millis(20));
                        }
                    }
                }
            })
        };

        let mut completed = 0usize;
        'serve: loop {
            if opts
                .stop
                .as_ref()
                .is_some_and(|flag| flag.load(Ordering::SeqCst))
            {
                break 'serve;
            }
            let event = match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(ConnEvent::Opened(conn, identity)) => {
                    identities.insert(conn, identity.clone());
                    Event::Connected(conn, identity)
                }
                Ok(ConnEvent::Frame(conn, msg)) => {
                    // Write-ahead: the journal holds the frame before the
                    // state machine acts on it, so a crash at any point
                    // leaves the ledger a superset of the applied state —
                    // replay is idempotent, loss is not.
                    if let Some(journal) = journal.as_mut() {
                        if Journal::records(&msg) {
                            let peer = identities
                                .get(&conn)
                                .cloned()
                                .unwrap_or_else(|| format!("conn:{conn}"));
                            if let Err(e) = journal.append(self.clock.now_ms(), conn, &peer, &msg) {
                                // The durability promise is broken; better
                                // to die visibly than serve amnesiac.
                                eprintln!("dispatch: journal append failed: {e}");
                                stop.store(true, Ordering::SeqCst);
                                let _ = acceptor.join();
                                return Err(DispatchError::Io(e));
                            }
                        }
                    }
                    Event::Message(conn, msg)
                }
                Ok(ConnEvent::Gone(conn, reason)) => {
                    if let Some(err) = reason {
                        eprintln!("dispatch: connection {conn} lost: {err}");
                    }
                    identities.remove(&conn);
                    writers.lock().expect("writer map").remove(&conn);
                    Event::Disconnected(conn)
                }
                Err(mpsc::RecvTimeoutError::Timeout) => Event::Tick,
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            };
            let actions = self.coordinator.handle(self.clock.now_ms(), event);
            for action in actions {
                match action {
                    Action::Send(conn, msg) => {
                        let mut writers = writers.lock().expect("writer map");
                        if let Some(stream) = writers.get_mut(&conn) {
                            if let Err(e) = write_message_wire(stream, &msg, opts.wire) {
                                eprintln!("dispatch: write to connection {conn} failed: {e}");
                                writers.remove(&conn);
                                // The reader thread will report Gone; the
                                // state machine hears about it next drain.
                            }
                        }
                    }
                    Action::Close(conn) => {
                        if let Some(stream) = writers.lock().expect("writer map").remove(&conn) {
                            let _ = stream.shutdown(std::net::Shutdown::Both);
                        }
                    }
                    Action::JobCompleted { .. } => {
                        completed += 1;
                        if opts.max_jobs.is_some_and(|max| completed >= max) {
                            break 'serve;
                        }
                    }
                    Action::WorkerLost {
                        name,
                        reason,
                        requeued,
                    } => match requeued {
                        Some(spec) => eprintln!(
                            "dispatch: worker {name:?} lost ({reason}); shard {spec} re-queued"
                        ),
                        None => eprintln!("dispatch: worker {name:?} lost ({reason}); was idle"),
                    },
                }
            }
        }

        stop.store(true, Ordering::SeqCst);
        // Dropping the writer map closes every connection; workers see
        // EOF and exit their loops.
        for (_, stream) in std::mem::take(&mut *writers.lock().expect("writer map")) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        let _ = acceptor.join();
        Ok(ServeSummary {
            jobs_completed: completed,
        })
    }
}

/// One reader thread: frames (or the reason the connection died) into the
/// shared channel. A protocol violation ends the connection — same as a
/// death, so the state machine has exactly one failure path. A non-zero
/// `frame_deadline_ms` arms the per-frame stall deadline: the socket gets
/// a short read timeout so the deadline is polled, and a peer that opens
/// a frame but dribbles it out is dropped with [`ProtoError::Stalled`].
fn spawn_reader(
    conn: ConnId,
    stream: TcpStream,
    tx: mpsc::Sender<ConnEvent>,
    frame_deadline_ms: u64,
    clock: Arc<dyn Clock>,
) {
    std::thread::spawn(move || {
        if frame_deadline_ms > 0 {
            let poll = (frame_deadline_ms / 4).clamp(10, 1_000);
            let _ = stream.set_read_timeout(Some(Duration::from_millis(poll)));
        }
        let mut reader =
            FrameReader::with_deadline(BufReader::new(stream), frame_deadline_ms, clock);
        loop {
            match reader.next_message() {
                Ok(Some(msg)) => {
                    if tx.send(ConnEvent::Frame(conn, msg)).is_err() {
                        return;
                    }
                }
                Ok(None) => {
                    let _ = tx.send(ConnEvent::Gone(conn, None));
                    return;
                }
                Err(e) => {
                    let _ = tx.send(ConnEvent::Gone(conn, Some(e)));
                    return;
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submit(campaign: &str, shards: usize) -> Message {
        Message::Submit {
            work: JobSpec::Catalog(campaign.to_string()),
            shards,
        }
    }

    #[test]
    fn job_keys_are_idempotent_and_spec_sensitive() {
        assert_eq!(job_key("quick", 4), job_key("quick", 4));
        assert_ne!(job_key("quick", 4), job_key("quick", 5));
        assert_ne!(job_key("quick", 4), job_key("slow", 4));
        assert_eq!(job_key("quick", 4).len(), 16, "16 hex digits");
    }

    #[test]
    fn unknown_campaigns_and_bad_shard_counts_are_rejected() {
        let mut c = Coordinator::new(DispatchConfig::default(), ["quick".to_string()]);
        for (campaign, shards, reason) in [
            ("nope", 2, RejectReason::UnknownCampaign),
            ("quick", 0, RejectReason::InvalidShards),
            ("quick", MAX_SHARDS + 1, RejectReason::InvalidShards),
        ] {
            let actions = c.handle(0, Event::Message(7, submit(campaign, shards)));
            match &actions[0] {
                Action::Send(7, Message::Reject { reason: got, .. }) => {
                    assert_eq!(*got, reason, "{campaign}/{shards}")
                }
                other => panic!("{campaign}/{shards}: {other:?}"),
            }
            assert!(matches!(&actions[1], Action::Close(7)));
            assert_eq!(c.open_jobs(), 0);
        }
        assert_eq!(c.status(0).counters.rejections, 3);
    }

    #[test]
    fn wrong_direction_messages_close_the_connection() {
        let mut c = Coordinator::new(DispatchConfig::default(), ["quick".to_string()]);
        let actions = c.handle(
            3,
            Event::Message(
                9,
                Message::Reject {
                    reason: RejectReason::Protocol,
                    message: "confused peer".into(),
                },
            ),
        );
        assert!(matches!(
            &actions[0],
            Action::Send(
                9,
                Message::Reject {
                    reason: RejectReason::Protocol,
                    ..
                }
            )
        ));
        assert!(matches!(&actions[1], Action::Close(9)));
    }

    #[test]
    fn token_buckets_credit_whole_intervals_and_keep_the_remainder() {
        let mut b = TokenBucket::new(1_000, 2);
        assert!(b.try_take() && b.try_take() && !b.try_take(), "burst of 2");
        // 1.5 intervals later: one token earned, the half interval kept.
        b.refill(2_500, 2, 1_000);
        assert_eq!(b.tokens, 1);
        assert_eq!(b.projected(2_999, 2, 1_000), 1, "remainder not yet a token");
        assert_eq!(b.projected(3_000, 2, 1_000), 2, "half + half = one more");
        b.refill(3_000, 2, 1_000);
        assert_eq!(b.tokens, 2);
        // Idle forever: capped at burst.
        b.refill(1_000_000, 2, 1_000);
        assert_eq!(b.tokens, 2);
        // refill_ms = 0 disables limiting entirely.
        let mut open = TokenBucket::new(0, 3);
        for _ in 0..10 {
            open.refill(0, 3, 0);
            assert!(open.try_take());
        }
    }
}
