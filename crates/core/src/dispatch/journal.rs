//! Append-only job journal: the coordinator's crash-recovery ledger.
//!
//! A coordinator run with a journal writes every *durable* frame —
//! `submit`, `shard_done`, `checkpoint` — to disk, fsync'd, **before**
//! the state machine acts on it. On restart the ledger is replayed
//! through the pure [`Coordinator`](super::Coordinator) at each record's
//! original timestamp, rebuilding jobs, completion slots, resume points,
//! the finished-result cache and the rate-limit buckets exactly as the
//! dead process had them. Transient frames (`register`, `heartbeat`,
//! `status`) are deliberately *not* journaled: workers must re-register
//! with the new process, and replay must not conjure phantom fleets.
//!
//! # Record format
//!
//! One record is a one-line JSON header followed by the frame itself,
//! re-encoded with the binary wire codec (checkpoint and shard payloads
//! are bulky; the header stays greppable):
//!
//! ```text
//! {"type":"journal","now_ms":1234,"conn":7,"peer":"10.0.0.3"}\n
//! <binary frame: [0xB1][u32 LE len][payload]\n>
//! ```
//!
//! Appends are fsync'd per record — a journal append that returned `Ok`
//! survives the process. A crash *mid-append* leaves a partial record at
//! the tail; [`replay_journal_file`] tolerates exactly that (the frame
//! was never acted on — write-ahead means the ledger is a superset of
//! the applied state) and fails loudly on corruption anywhere else.

use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;

use crate::binwire::WireFormat;
use crate::json::JsonWriter;
use crate::jsonval::JsonValue;

use super::coordinator::ConnId;
use super::proto::{read_message_buffered, Message, ProtoError};

/// One replayed journal record: the frame plus the context
/// [`Coordinator::replay_journal`](super::Coordinator::replay_journal)
/// feeds back through `handle`.
#[derive(Debug)]
pub struct JournalEntry {
    /// The coordinator clock when the frame was journaled.
    pub now_ms: u64,
    /// The connection the frame arrived on. Only meaningful *within* the
    /// ledger (replay closes them all at the end); never reused live.
    pub conn: ConnId,
    /// The submitter identity the rate limiter keys on.
    pub peer: String,
    /// The frame itself.
    pub msg: Message,
}

/// The write side: an append-only, fsync-per-record frame ledger.
#[derive(Debug)]
pub struct Journal {
    file: File,
}

impl Journal {
    /// Opens `path` for appending, creating it if absent. Replay the
    /// existing contents first — appends do not read.
    pub fn open_append(path: impl AsRef<Path>) -> io::Result<Journal> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Journal { file })
    }

    /// Whether a frame belongs in the ledger: durable job state only.
    pub fn records(msg: &Message) -> bool {
        matches!(
            msg,
            Message::Submit { .. } | Message::ShardDone { .. } | Message::Checkpoint { .. }
        )
    }

    /// Appends one record and fsyncs it. When this returns `Ok`, the
    /// frame survives a crash of this process.
    pub fn append(
        &mut self,
        now_ms: u64,
        conn: ConnId,
        peer: &str,
        msg: &Message,
    ) -> io::Result<()> {
        let mut header = JsonWriter::new();
        header.begin_object();
        header.key("type");
        header.string("journal");
        header.key("now_ms");
        header.number_u64(now_ms);
        header.key("conn");
        header.number_u64(conn);
        header.key("peer");
        header.string(peer);
        header.end_object();
        let mut record = header.finish().into_bytes();
        record.push(b'\n');
        record.extend_from_slice(&msg.to_frame_bytes(WireFormat::Bin));
        // One write, then fsync: the record is on disk in order, and a
        // crash can only ever truncate the final record.
        self.file.write_all(&record)?;
        self.file.sync_data()
    }
}

/// Reads a journal back into replayable entries. A missing file is an
/// empty ledger. A partial *final* record (crash mid-append) is dropped
/// silently — write-ahead ordering guarantees the state machine never
/// acted on it. Corruption anywhere else is an error: the ledger's
/// middle is load-bearing and must not be silently skipped.
pub fn replay_journal_file(path: impl AsRef<Path>) -> io::Result<Vec<JournalEntry>> {
    let file = match File::open(path.as_ref()) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut reader = BufReader::new(file);
    let mut entries = Vec::new();
    let mut line = String::new();
    let mut frame_buf = Vec::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Ok(entries); // clean end of ledger
        }
        if !line.ends_with('\n') {
            return Ok(entries); // torn header at the tail
        }
        let header = match JsonValue::parse(&line) {
            Ok(doc) => doc,
            Err(e) => return Err(corrupt(entries.len(), format!("bad header: {e}"))),
        };
        let kind = header.get("type").and_then(JsonValue::as_str);
        if kind != Some("journal") {
            return Err(corrupt(
                entries.len(),
                format!("header type {kind:?}, expected \"journal\""),
            ));
        }
        let (now_ms, conn, peer) = match (
            header.get("now_ms").and_then(JsonValue::as_u64),
            header.get("conn").and_then(JsonValue::as_u64),
            header.get("peer").and_then(JsonValue::as_str),
        ) {
            (Some(n), Some(c), Some(p)) => (n, c, p.to_string()),
            _ => return Err(corrupt(entries.len(), "header missing a field".to_string())),
        };
        match read_message_buffered(&mut reader, &mut frame_buf) {
            Ok(Some(msg)) => entries.push(JournalEntry {
                now_ms,
                conn,
                peer,
                msg,
            }),
            // A header with no frame, or a torn frame, at the tail: the
            // crash hit between the header and the fsync. Drop it.
            Ok(None) | Err(ProtoError::Truncated { .. }) => return Ok(entries),
            Err(e) => return Err(corrupt(entries.len(), format!("bad frame: {e}"))),
        }
    }
}

fn corrupt(record: usize, detail: String) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("journal corrupt at record {record}: {detail}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::proto::JobSpec;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("strex-journal-{}-{name}.wal", std::process::id()));
        p
    }

    fn submit(campaign: &str) -> Message {
        Message::Submit {
            work: JobSpec::Catalog(campaign.to_string()),
            shards: 2,
        }
    }

    #[test]
    fn round_trips_records_in_order() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut journal = Journal::open_append(&path).expect("open");
        journal.append(10, 1, "10.0.0.1", &submit("quick")).unwrap();
        journal.append(20, 2, "10.0.0.2", &submit("other")).unwrap();
        let entries = replay_journal_file(&path).expect("replay");
        assert_eq!(entries.len(), 2);
        assert_eq!(
            (entries[0].now_ms, entries[0].conn, entries[0].peer.as_str()),
            (10, 1, "10.0.0.1")
        );
        assert_eq!(entries[1].now_ms, 20);
        assert!(
            matches!(&entries[1].msg, Message::Submit { work: JobSpec::Catalog(c), .. } if c == "other")
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_empty_ledger() {
        let entries = replay_journal_file(tmp("never-created")).expect("replay");
        assert!(entries.is_empty());
    }

    #[test]
    fn torn_tail_is_dropped_but_corrupt_middle_is_an_error() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let mut journal = Journal::open_append(&path).expect("open");
        journal.append(10, 1, "peer", &submit("quick")).unwrap();
        journal.append(20, 1, "peer", &submit("other")).unwrap();
        let full = std::fs::read(&path).unwrap();

        // Chop bytes off the tail: every truncation point must replay to
        // either both records (only the trailing newline-adjacent bytes
        // missing would still truncate the second frame) or fewer — and
        // never error, because only the tail is damaged.
        for cut in 1..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let entries = replay_journal_file(&path).expect("torn tails replay cleanly");
            assert!(entries.len() <= 2);
        }

        // Corruption in the middle (first record's frame bytes) must
        // surface, not silently skip.
        let mut corrupted = full.clone();
        let frame_start = corrupted
            .iter()
            .position(|&b| b == b'\n')
            .expect("header newline")
            + 1;
        corrupted[frame_start] = b'X'; // first record's frame no longer parses
        std::fs::write(&path, &corrupted).unwrap();
        assert!(replay_journal_file(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
