//! Deterministic fault injection for the dispatcher.
//!
//! The dispatcher's recovery claims — re-queue on worker death, journal
//! replay on coordinator restart, idempotent resubmission — are only
//! worth stating if they hold under faults that arrive at awkward
//! moments. This module makes those moments *reproducible*: a
//! [`FaultPlan`] is a pure function of a seed, and a [`ChaosProxy`] is a
//! TCP shim between dispatcher processes that mangles traffic exactly as
//! the plan dictates. A failing seed is a bug report you can re-run.
//!
//! Faults are injected at *frame* granularity (the proxy splits streams
//! on the protocol's frame boundaries without parsing payloads) and
//! triggered by *frame counts*, not wall time — the schedule a seed
//! produces does not depend on host speed. The faults themselves model
//! what TCP can actually do to the dispatcher:
//!
//! * **drop** — the connection dies with the frame unflushed (TCP never
//!   loses a frame from a live stream, so a lost frame *is* a dead
//!   connection). Peers see EOF and take their recovery paths.
//! * **truncate** — a prefix of the frame arrives, then the connection
//!   dies: the receiver's framing layer must answer with a typed
//!   `Truncated`/`Stalled`, never a hang or a panic.
//! * **duplicate** — the frame arrives twice, probing the at-least-once
//!   dedup paths (completion slots, idempotent submission keys).
//! * **delay** — the frame arrives late (bounded), reordering deliveries
//!   across connections and widening race windows.
//! * **kill at frame N** — the Nth forwarded frame kills its connection:
//!   "the worker died mid-shard", placed deterministically.
//! * **heal after N frames** — the storm is bounded: past the heal
//!   point every frame forwards untouched, so a correct recovery path
//!   provably *converges* instead of racing an endless fault stream.
//!
//! Coordinator crash-and-restart is driven by the *harness* (kill the
//! `serve` process or trip its [`ServeOptions::stop`](super::ServeOptions)
//! flag, then restart on the same `--journal`); the proxy keeps the
//! submitter and worker ends alive across the outage so their backoff
//! and resubmission paths run for real.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::binwire;

use super::proto::MAX_BINARY_FRAME;

/// A tiny deterministic RNG (xorshift64\* over a SplitMix64-scrambled
/// seed) for fault schedules. Self-contained on purpose: fault plans
/// must not perturb, or be perturbed by, any other randomness in the
/// process.
#[derive(Clone, Debug)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// An RNG whose entire future is determined by `seed`.
    pub fn new(seed: u64) -> ChaosRng {
        // SplitMix64 scramble: distinct-but-close seeds (0, 1, 2…) get
        // uncorrelated streams, and the forbidden all-zero state is
        // remapped.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ChaosRng {
            state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
        }
    }

    /// The next raw draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A draw in `0..n` (`0` for `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// True with probability `per_mille`/1000.
    pub fn chance(&mut self, per_mille: u16) -> bool {
        self.below(1_000) < u64::from(per_mille)
    }
}

/// What to do to the traffic, derived entirely from a seed.
///
/// Rates are per-mille per frame; `kill_at_frame` counts frames
/// *forwarded through the whole proxy* (all connections, both
/// directions), so one plan places one deterministic mid-stream death.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed the per-connection fault streams derive from.
    pub seed: u64,
    /// Chance a frame's connection dies with the frame unflushed.
    pub drop_per_mille: u16,
    /// Chance a frame is delivered twice.
    pub dup_per_mille: u16,
    /// Chance a frame's prefix is delivered and the connection then dies.
    pub truncate_per_mille: u16,
    /// Chance a frame is delayed by `delay_ms` before delivery.
    pub delay_per_mille: u16,
    /// How long a delayed frame waits.
    pub delay_ms: u64,
    /// Kill the connection carrying the Nth forwarded frame (1-based).
    pub kill_at_frame: Option<u64>,
    /// Stop injecting faults after this many forwarded frames: the storm
    /// passes, the network heals, and recovery can be asserted to
    /// *converge* rather than merely survive. `None` storms forever —
    /// use only with probabilistic rates low enough to make progress.
    pub heal_after_frames: Option<u64>,
}

impl FaultPlan {
    /// A plan that forwards everything untouched — the control arm.
    pub fn benign(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_per_mille: 0,
            dup_per_mille: 0,
            truncate_per_mille: 0,
            delay_per_mille: 0,
            delay_ms: 0,
            kill_at_frame: None,
            heal_after_frames: None,
        }
    }

    /// Derives a hostile-but-convergent plan from a seed: each fault
    /// class gets an independent rate up to ~10%, delays stay small,
    /// roughly half of all seeds also place one deterministic connection
    /// kill early in the run — and every derived storm heals after a
    /// bounded number of frames, so a correct recovery path always gets
    /// a clean network to finish on (the liveness half of the chaos
    /// suite's contract). The same seed always derives the same plan.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut rng = ChaosRng::new(seed);
        FaultPlan {
            seed,
            drop_per_mille: rng.below(100) as u16,
            dup_per_mille: rng.below(150) as u16,
            truncate_per_mille: rng.below(100) as u16,
            delay_per_mille: rng.below(300) as u16,
            delay_ms: 1 + rng.below(25),
            kill_at_frame: if rng.chance(500) {
                Some(1 + rng.below(40))
            } else {
                None
            },
            heal_after_frames: Some(60 + rng.below(140)),
        }
    }
}

/// A frame-aware TCP shim applying a [`FaultPlan`] between dispatcher
/// peers. Point submitters and workers at the proxy's listen address
/// instead of the coordinator's; every accepted connection is forwarded
/// upstream with faults injected per frame, each connection drawing its
/// own deterministic stream from the plan's seed and the connection's
/// accept index.
pub struct ChaosProxy {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    forwarded: Arc<AtomicU64>,
    acceptor: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts a proxy listening on `listen`, forwarding to `upstream`
    /// under `plan`. Returns once the listener is bound.
    pub fn start(
        listen: impl ToSocketAddrs,
        upstream: SocketAddr,
        plan: FaultPlan,
    ) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind(listen)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let forwarded = Arc::new(AtomicU64::new(0));
        let acceptor = {
            let stop = Arc::clone(&stop);
            let forwarded = Arc::clone(&forwarded);
            std::thread::spawn(move || {
                let mut conn_index: u64 = 0;
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((inbound, _)) => {
                            let index = conn_index;
                            conn_index += 1;
                            let forwarded = Arc::clone(&forwarded);
                            let stop = Arc::clone(&stop);
                            std::thread::spawn(move || {
                                let _ = relay(inbound, upstream, plan, index, forwarded, stop);
                            });
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => {
                            // Aborted backlog connections surface here;
                            // the listener must keep accepting or every
                            // future peer hangs in the backlog.
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    }
                }
            })
        };
        Ok(ChaosProxy {
            local_addr,
            stop,
            forwarded,
            acceptor: Some(acceptor),
        })
    }

    /// Where peers should connect.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Frames forwarded (or faulted) so far, across all connections.
    pub fn frames_seen(&self) -> u64 {
        self.forwarded.load(Ordering::SeqCst)
    }

    /// Shared handle to the forwarded-frame counter (debug/monitoring).
    pub fn frames(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.forwarded)
    }

    /// Stops accepting. Existing relays end when their connections do.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One proxied connection: dial upstream, pump both directions on their
/// own threads, die together (any fault or error shuts both sockets, so
/// the two pumps and both peers observe one connection death).
fn relay(
    inbound: TcpStream,
    upstream: SocketAddr,
    plan: FaultPlan,
    conn_index: u64,
    forwarded: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
) -> io::Result<()> {
    let outbound = TcpStream::connect(upstream)?;
    let pump_up = {
        let from = inbound.try_clone()?;
        let to = outbound.try_clone()?;
        let rng = ChaosRng::new(plan.seed ^ (conn_index << 1));
        let forwarded = Arc::clone(&forwarded);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || pump(from, to, plan, rng, forwarded, stop))
    };
    let rng = ChaosRng::new(plan.seed ^ ((conn_index << 1) | 1));
    pump(outbound, inbound, plan, rng, forwarded, stop);
    let _ = pump_up.join();
    Ok(())
}

/// Forwards frames from `from` to `to`, applying the plan. Any exit —
/// clean EOF, injected fault, transport error — shuts down both sockets,
/// which also ends the sibling pump.
fn pump(
    from: TcpStream,
    to: TcpStream,
    plan: FaultPlan,
    mut rng: ChaosRng,
    forwarded: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
) {
    // A blocked read must not outlive the proxy: poll with a timeout so
    // the stop flag is honored.
    let _ = from.set_read_timeout(Some(Duration::from_millis(100)));
    let mut reader = BufReader::new(from.try_clone().expect("clone proxied socket"));
    let mut to = to;
    let mut buf = Vec::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match read_raw_frame(&mut reader, &mut buf) {
            Ok(true) => {}
            Ok(false) => break, // clean EOF
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue
            }
            Err(_) => break,
        }
        let n = forwarded.fetch_add(1, Ordering::SeqCst) + 1;
        if plan.heal_after_frames.is_some_and(|heal| n > heal) {
            // The storm has passed: forward untouched from here on.
            if to.write_all(&buf).is_err() || to.flush().is_err() {
                break;
            }
            continue;
        }
        if plan.kill_at_frame == Some(n) || rng.chance(plan.drop_per_mille) {
            // The frame dies with its connection.
            break;
        }
        if rng.chance(plan.truncate_per_mille) && buf.len() > 1 {
            let _ = to.write_all(&buf[..buf.len() / 2]);
            let _ = to.flush();
            break;
        }
        if rng.chance(plan.delay_per_mille) {
            std::thread::sleep(Duration::from_millis(plan.delay_ms));
        }
        if to.write_all(&buf).is_err() {
            break;
        }
        if rng.chance(plan.dup_per_mille) && to.write_all(&buf).is_err() {
            break;
        }
        if to.flush().is_err() {
            break;
        }
    }
    let _ = reader.into_inner().shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// Reads one raw frame — bytes untouched, boundary found the same way
/// [`read_message_buffered`](super::proto::read_message_buffered)
/// finds it (binary magic + length prefix, else newline) — so the proxy
/// can mangle frames without re-encoding them. `Ok(false)` is EOF.
fn read_raw_frame(reader: &mut impl BufRead, buf: &mut Vec<u8>) -> io::Result<bool> {
    buf.clear();
    let first = match reader.fill_buf()?.first() {
        Some(&b) => b,
        None => return Ok(false),
    };
    if binwire::is_binary(first) {
        let mut header = [0u8; 5];
        read_exact_retrying(reader, &mut header)?;
        let len = u32::from_le_bytes(header[1..5].try_into().expect("4 bytes")) as usize;
        if len > MAX_BINARY_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "oversized frame through chaos proxy",
            ));
        }
        buf.extend_from_slice(&header);
        let start = buf.len();
        buf.resize(start + len + 1, 0);
        read_exact_retrying(reader, &mut buf[start..])?;
        Ok(true)
    } else {
        // JSON line; read timeouts mid-line surface as errors from
        // read_until, so retry until the newline lands.
        loop {
            match reader.read_until(b'\n', buf) {
                Ok(0) => return Ok(!buf.is_empty()),
                Ok(_) => {
                    if buf.last() == Some(&b'\n') {
                        return Ok(true);
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// `read_exact` over a socket with a read timeout: timeouts retry,
/// everything else propagates.
fn read_exact_retrying(reader: &mut impl Read, out: &mut [u8]) -> io::Result<()> {
    let mut filled = 0;
    while filled < out.len() {
        match reader.read(&mut out[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection died mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_seed_sensitive() {
        let draws = |seed: u64| -> Vec<u64> {
            let mut rng = ChaosRng::new(seed);
            (0..8).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(draws(42), draws(42));
        assert_ne!(draws(42), draws(43));
        assert_ne!(draws(0), draws(1), "scrambled: adjacent seeds diverge");
    }

    #[test]
    fn chance_respects_the_rate_extremes() {
        let mut rng = ChaosRng::new(7);
        assert!((0..100).all(|_| !rng.chance(0)));
        assert!((0..100).all(|_| rng.chance(1_000)));
    }

    #[test]
    fn plans_derive_deterministically_and_within_bounds() {
        for seed in 0..200 {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            assert_eq!(a, b, "seed {seed} must derive one plan");
            assert!(a.drop_per_mille < 100);
            assert!(a.dup_per_mille < 150);
            assert!(a.truncate_per_mille < 100);
            assert!(a.delay_per_mille < 300);
            assert!(a.delay_ms >= 1 && a.delay_ms <= 25);
            if let Some(kill) = a.kill_at_frame {
                assert!((1..=40).contains(&kill));
            }
            let heal = a.heal_after_frames.expect("derived plans always heal");
            assert!((60..200).contains(&heal));
        }
        let benign = FaultPlan::benign(9);
        assert_eq!(benign.drop_per_mille, 0);
        assert_eq!(benign.kill_at_frame, None);
    }

    #[test]
    fn benign_proxy_is_transparent_to_both_frame_encodings() {
        let upstream = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let upstream_addr = upstream.local_addr().expect("addr");
        let proxy =
            ChaosProxy::start("127.0.0.1:0", upstream_addr, FaultPlan::benign(1)).expect("proxy");

        // Raw byte-level echo upstream, so any re-encoding or boundary
        // slip in the proxy shows up as a byte diff.
        let echo = std::thread::spawn(move || {
            let (stream, _) = upstream.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut out = stream;
            let mut buf = Vec::new();
            for _ in 0..2 {
                assert!(read_raw_frame(&mut reader, &mut buf).expect("read frame"));
                out.write_all(&buf).expect("echo");
            }
            out.flush().expect("flush");
        });

        let json_frame = b"{\"type\":\"heartbeat\"}\n".to_vec();
        let payload = b"opaque \n payload bytes"; // embedded newline: length framing must win
        let mut bin_frame = vec![binwire::MAGIC];
        bin_frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bin_frame.extend_from_slice(payload);
        bin_frame.push(b'\n');

        let mut client = TcpStream::connect(proxy.local_addr()).expect("connect via proxy");
        client.write_all(&json_frame).expect("send json");
        client.write_all(&bin_frame).expect("send bin");
        client.flush().expect("flush");

        let mut expected = json_frame;
        expected.extend_from_slice(&bin_frame);
        let mut echoed = vec![0u8; expected.len()];
        client.read_exact(&mut echoed).expect("read echo");
        assert_eq!(echoed, expected, "benign proxy must be byte-transparent");
        drop(client);
        echo.join().expect("echo thread");
    }
}
