//! `repro serve` / `repro work` — the TCP campaign dispatcher.
//!
//! The multi-process layer in [`crate::campaign`] proved the shard wire
//! format for local child processes spawned per run; this module is the
//! next layer up, a long-lived service: a **coordinator** accepting
//! submissions over TCP — catalog campaigns by name, or full
//! [`crate::scenario`] documents whose assertions the coordinator
//! evaluates on the merged result — a fleet of **workers** executing
//! shards, and the job-lifecycle machinery between them: idempotent
//! submission keys, per-worker liveness via heartbeats, re-queue of
//! shards from dead or straggling workers, per-submitter token-bucket
//! rate limiting, capability-aware assignment, and a status frame for
//! observability. The delivery contract is at-least-once with dedup at
//! the coordinator's completion slots, which is safe precisely because
//! shard execution is deterministic and
//! [`merge`](crate::campaign::merge) is order-insensitive: however many
//! times a shard runs, its bytes are the same, and the merged
//! [`CampaignResult`](crate::campaign::CampaignResult) is bit-identical
//! to a sequential in-process run.
//!
//! The pieces, each its own module:
//!
//! * [`proto`] — newline-delimited frames, JSON or length-prefixed
//!   binary ([`crate::binwire`]) negotiated per frame by first byte;
//!   typed parse errors, never panics.
//! * [`clock`] — the deadline clock abstraction; production reads a
//!   monotonic [`clock::SystemClock`], lifecycle tests drive
//!   the same coordinator with a hand-advanced
//!   [`clock::FakeClock`].
//! * [`coordinator`] — the pure state machine ([`Coordinator`]) and its
//!   TCP shell ([`Server`]).
//! * [`mod@status`] — the fleet snapshot ([`StatusReport`]) behind the
//!   `status` frames and `repro status`.
//! * [`worker`] — the worker loop: register with capabilities, execute,
//!   heartbeat, and checkpoint shard progress.
//! * [`client`] — the blocking submitter (campaigns, scenarios, status
//!   polls) with jittered-exponential-backoff reconnects.
//! * [`journal`] — the coordinator's fsync'd write-ahead ledger; a
//!   restarted coordinator replays it and resumes its jobs.
//! * [`chaos`] — deterministic fault injection: a seeded [`FaultPlan`]
//!   driving a frame-mangling TCP proxy, for the crash-recovery suites.
//!
//! Wire format and failure semantics are documented in
//! `docs/PROTOCOL.md`; deployment, tuning and failure playbooks in
//! `docs/DISPATCHER.md`. The `repro serve` / `repro work` / `repro
//! submit` / `repro status` subcommands in `strex-bench` are thin CLIs
//! over these entry points.

pub mod chaos;
pub mod client;
pub mod clock;
pub mod coordinator;
pub mod journal;
pub mod proto;
pub mod status;
pub mod worker;

pub use chaos::{ChaosProxy, ChaosRng, FaultPlan};
pub use client::{
    connect_with_retry, connect_with_retry_seeded, status, submit, submit_scenario,
    submit_scenario_with_retry, submit_with_retry, Backoff,
};
pub use clock::{Clock, FakeClock, SystemClock};
pub use coordinator::{
    job_key, Action, ConnId, Coordinator, DispatchConfig, Event, ServeOptions, ServeSummary,
    Server, WorkerLossReason, MAX_SHARDS,
};
pub use journal::{replay_journal_file, Journal, JournalEntry};
pub use proto::{
    read_message, read_message_buffered, write_message, write_message_wire, FrameReader, JobSpec,
    Message, ProtoError, RejectReason, WorkerCaps,
};
pub use status::{
    AssignmentStatus, JobStatus, RateStatus, StatusCounters, StatusReport, WorkerStatus,
};
pub use worker::{run_worker, ShardRunner, WorkerOptions, WorkerSummary};

use std::fmt;

use crate::campaign::ShardSpec;

/// Why a dispatcher endpoint (server, worker or submitter) gave up.
#[derive(Debug)]
pub enum DispatchError {
    /// The transport failed.
    Io(std::io::Error),
    /// A frame could not be read or decoded.
    Proto(ProtoError),
    /// The coordinator refused the request, with a typed reason so
    /// callers can branch (retry after `RateLimited`, give up on
    /// `UnknownCampaign`) without parsing prose.
    Rejected {
        /// The typed refusal.
        reason: RejectReason,
        /// Human-readable detail.
        message: String,
    },
    /// The peer sent a well-formed frame that makes no sense here.
    Protocol(String),
    /// A worker's [`ShardRunner`] failed on an assigned shard.
    Runner {
        /// The campaign (or scenario name) the shard belongs to.
        campaign: String,
        /// Which shard failed.
        spec: ShardSpec,
        /// The runner's error.
        message: String,
    },
}

impl fmt::Display for DispatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchError::Io(e) => write!(f, "transport error: {e}"),
            DispatchError::Proto(e) => write!(f, "{e}"),
            DispatchError::Rejected { reason, message } => {
                write!(f, "rejected by the coordinator ({reason}): {message}")
            }
            DispatchError::Protocol(m) => write!(f, "protocol violation: {m}"),
            DispatchError::Runner {
                campaign,
                spec,
                message,
            } => write!(f, "shard {spec} of campaign {campaign:?} failed: {message}"),
        }
    }
}

impl std::error::Error for DispatchError {}

impl From<std::io::Error> for DispatchError {
    fn from(e: std::io::Error) -> Self {
        DispatchError::Io(e)
    }
}

/// One consistent rendering for "a peer process died under us", shared by
/// the `repro dist` child-process error path and the dispatcher's
/// worker-loss logging: what the peer was, how it exited, and whatever it
/// said on stderr (trimmed; omitted when silent).
pub fn peer_failure(peer: &str, status: &str, stderr: &str) -> String {
    let stderr = stderr.trim();
    if stderr.is_empty() {
        format!("{peer} exited with {status} (no stderr)")
    } else {
        format!("{peer} exited with {status}; stderr:\n{stderr}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_failure_includes_status_and_stderr() {
        let msg = peer_failure("shard child 2/4", "exit status: 101", "thread panicked\n");
        assert!(msg.contains("shard child 2/4"));
        assert!(msg.contains("exit status: 101"));
        assert!(msg.contains("thread panicked"));
        let silent = peer_failure("worker", "signal: 9", "  ");
        assert!(silent.contains("no stderr"), "{silent}");
    }

    #[test]
    fn dispatch_errors_render_their_context() {
        let e = DispatchError::Runner {
            campaign: "quick".into(),
            spec: ShardSpec { index: 1, count: 4 },
            message: "boom".into(),
        };
        let s = e.to_string();
        assert!(
            s.contains("1/4") && s.contains("quick") && s.contains("boom"),
            "{s}"
        );
        let r = DispatchError::Rejected {
            reason: RejectReason::RateLimited,
            message: "nope".into(),
        }
        .to_string();
        assert!(r.contains("rate_limited") && r.contains("nope"), "{r}");
    }
}
