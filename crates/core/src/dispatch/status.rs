//! The fleet snapshot behind the `status` / `status_report` frames.
//!
//! [`StatusReport`] is a plain value the pure
//! [`Coordinator`](super::Coordinator) assembles from its own state —
//! jobs in flight, per-worker liveness and assignment, lifetime
//! counters, rate-limiter state — with no I/O and no clock reads of its
//! own (the caller passes `now_ms`, so FakeClock tests can pin every
//! age in the report). It crosses the wire as the JSON fields of a
//! `status_report` frame and renders for humans via [`fmt::Display`]
//! (what `repro status` prints).
//!
//! Ages are materialized at snapshot time (`last_seen_ms_ago`,
//! `running_ms`) rather than as absolute timestamps, so the report is
//! meaningful on a machine whose clock has nothing to do with the
//! coordinator's.

use std::fmt;

use crate::json::JsonWriter;
use crate::jsonval::{JsonValue, WireError};

/// Lifetime counters since the coordinator started.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatusCounters {
    /// Submissions accepted (new jobs plus coalesced/replayed ones).
    pub submissions: u64,
    /// Requests refused with a `reject` frame.
    pub rejections: u64,
    /// Jobs fully merged and answered.
    pub jobs_completed: u64,
    /// Shard completions accepted into a slot (duplicates excluded).
    pub shards_completed: u64,
}

/// One job in flight.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JobStatus {
    /// The job's idempotency key.
    pub key: String,
    /// Human-readable label: catalog name or scenario name.
    pub label: String,
    /// Total shards the job was split into.
    pub shards: usize,
    /// Shards whose results are in their completion slots.
    pub done: usize,
    /// Shards waiting in the queue for an idle worker.
    pub queued: usize,
    /// Shards currently assigned to workers.
    pub running: usize,
    /// Submitter connections waiting on the merged result.
    pub waiters: usize,
}

/// The shard a worker is currently executing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AssignmentStatus {
    /// The job's idempotency key.
    pub job: String,
    /// Shard index.
    pub index: usize,
    /// Shard count.
    pub count: usize,
    /// How long the shard has been running, at snapshot time.
    pub running_ms: u64,
    /// Whether the shard was hedged to another worker for straggling.
    pub hedged: bool,
}

/// One registered worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerStatus {
    /// The worker's self-declared label.
    pub name: String,
    /// Declared host cores.
    pub cores: usize,
    /// Whether the worker accepts inline scenario jobs.
    pub scenarios: bool,
    /// Milliseconds since the worker's last frame, at snapshot time.
    pub last_seen_ms_ago: u64,
    /// What the worker is executing, if anything.
    pub assignment: Option<AssignmentStatus>,
}

/// One submitter's rate-limiter state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RateStatus {
    /// The submitter identity the bucket is keyed by (peer IP).
    pub peer: String,
    /// Tokens currently available (refill applied as of snapshot time).
    pub tokens: u64,
}

/// A full fleet snapshot — the payload of a `status_report` frame.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatusReport {
    /// Coordinator clock at snapshot time (milliseconds; FakeClock in
    /// tests, monotonic-since-start in production).
    pub now_ms: u64,
    /// Shards queued across all jobs, waiting for an idle worker.
    pub queue_depth: usize,
    /// Lifetime counters.
    pub counters: StatusCounters,
    /// Jobs in flight, in key order.
    pub jobs: Vec<JobStatus>,
    /// Registered workers, in registration order.
    pub workers: Vec<WorkerStatus>,
    /// Known submitter buckets, in identity order.
    pub rate: Vec<RateStatus>,
}

impl StatusReport {
    /// Writes the report's fields into an already-open frame object
    /// (the `"type"` key is the caller's).
    pub fn write_fields(&self, w: &mut JsonWriter) {
        w.key("now_ms");
        w.number_u64(self.now_ms);
        w.key("queue_depth");
        w.number_u64(self.queue_depth as u64);
        w.key("counters");
        w.begin_object();
        w.key("submissions");
        w.number_u64(self.counters.submissions);
        w.key("rejections");
        w.number_u64(self.counters.rejections);
        w.key("jobs_completed");
        w.number_u64(self.counters.jobs_completed);
        w.key("shards_completed");
        w.number_u64(self.counters.shards_completed);
        w.end_object();
        w.key("jobs");
        w.begin_array();
        for j in &self.jobs {
            w.begin_object();
            w.key("key");
            w.string(&j.key);
            w.key("label");
            w.string(&j.label);
            w.key("shards");
            w.number_u64(j.shards as u64);
            w.key("done");
            w.number_u64(j.done as u64);
            w.key("queued");
            w.number_u64(j.queued as u64);
            w.key("running");
            w.number_u64(j.running as u64);
            w.key("waiters");
            w.number_u64(j.waiters as u64);
            w.end_object();
        }
        w.end_array();
        w.key("workers");
        w.begin_array();
        for worker in &self.workers {
            w.begin_object();
            w.key("name");
            w.string(&worker.name);
            w.key("cores");
            w.number_u64(worker.cores as u64);
            w.key("scenarios");
            w.boolean(worker.scenarios);
            w.key("last_seen_ms_ago");
            w.number_u64(worker.last_seen_ms_ago);
            if let Some(a) = &worker.assignment {
                w.key("assignment");
                w.begin_object();
                w.key("job");
                w.string(&a.job);
                w.key("index");
                w.number_u64(a.index as u64);
                w.key("count");
                w.number_u64(a.count as u64);
                w.key("running_ms");
                w.number_u64(a.running_ms);
                w.key("hedged");
                w.boolean(a.hedged);
                w.end_object();
            }
            w.end_object();
        }
        w.end_array();
        w.key("rate");
        w.begin_array();
        for r in &self.rate {
            w.begin_object();
            w.key("peer");
            w.string(&r.peer);
            w.key("tokens");
            w.number_u64(r.tokens);
            w.end_object();
        }
        w.end_array();
    }

    /// Reads a report back from a parsed `status_report` frame document.
    pub fn from_json_value(doc: &JsonValue) -> Result<StatusReport, WireError> {
        let counters = doc.req("counters")?;
        let jobs = doc
            .req_array("jobs")?
            .iter()
            .map(|j| {
                Ok(JobStatus {
                    key: j.req_str("key")?.to_string(),
                    label: j.req_str("label")?.to_string(),
                    shards: j.req_u64("shards")? as usize,
                    done: j.req_u64("done")? as usize,
                    queued: j.req_u64("queued")? as usize,
                    running: j.req_u64("running")? as usize,
                    waiters: j.req_u64("waiters")? as usize,
                })
            })
            .collect::<Result<Vec<JobStatus>, WireError>>()?;
        let workers = doc
            .req_array("workers")?
            .iter()
            .map(|v| {
                let assignment = match v.get("assignment") {
                    Some(a) => Some(AssignmentStatus {
                        job: a.req_str("job")?.to_string(),
                        index: a.req_u64("index")? as usize,
                        count: a.req_u64("count")? as usize,
                        running_ms: a.req_u64("running_ms")?,
                        hedged: a.req_bool("hedged")?,
                    }),
                    None => None,
                };
                Ok(WorkerStatus {
                    name: v.req_str("name")?.to_string(),
                    cores: v.req_u64("cores")? as usize,
                    scenarios: v.req_bool("scenarios")?,
                    last_seen_ms_ago: v.req_u64("last_seen_ms_ago")?,
                    assignment,
                })
            })
            .collect::<Result<Vec<WorkerStatus>, WireError>>()?;
        let rate = doc
            .req_array("rate")?
            .iter()
            .map(|v| {
                Ok(RateStatus {
                    peer: v.req_str("peer")?.to_string(),
                    tokens: v.req_u64("tokens")?,
                })
            })
            .collect::<Result<Vec<RateStatus>, WireError>>()?;
        Ok(StatusReport {
            now_ms: doc.req_u64("now_ms")?,
            queue_depth: doc.req_u64("queue_depth")? as usize,
            counters: StatusCounters {
                submissions: counters.req_u64("submissions")?,
                rejections: counters.req_u64("rejections")?,
                jobs_completed: counters.req_u64("jobs_completed")?,
                shards_completed: counters.req_u64("shards_completed")?,
            },
            jobs,
            workers,
            rate,
        })
    }
}

impl fmt::Display for StatusReport {
    /// The human rendering `repro status` prints: one header line, then
    /// one line per job, worker and rate bucket.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "dispatcher: {} job(s) in flight, {} shard(s) queued, {} worker(s)",
            self.jobs.len(),
            self.queue_depth,
            self.workers.len()
        )?;
        writeln!(
            f,
            "lifetime: {} submission(s) accepted, {} rejected; {} job(s) and {} shard(s) completed",
            self.counters.submissions,
            self.counters.rejections,
            self.counters.jobs_completed,
            self.counters.shards_completed
        )?;
        for j in &self.jobs {
            writeln!(
                f,
                "job {} ({}): {}/{} shard(s) done, {} queued, {} running, {} waiter(s)",
                j.key, j.label, j.done, j.shards, j.queued, j.running, j.waiters
            )?;
        }
        for worker in &self.workers {
            write!(
                f,
                "worker {} ({} core(s){}): ",
                worker.name,
                worker.cores,
                if worker.scenarios { ", scenarios" } else { "" }
            )?;
            match &worker.assignment {
                Some(a) => write!(
                    f,
                    "running shard {}/{} of job {} for {} ms{}",
                    a.index,
                    a.count,
                    a.job,
                    a.running_ms,
                    if a.hedged { " (hedged)" } else { "" }
                )?,
                None => write!(f, "idle")?,
            }
            writeln!(f, ", seen {} ms ago", worker.last_seen_ms_ago)?;
        }
        for r in &self.rate {
            writeln!(f, "rate {}: {} token(s) available", r.peer, r.tokens)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StatusReport {
        StatusReport {
            now_ms: 12_500,
            queue_depth: 3,
            counters: StatusCounters {
                submissions: 5,
                rejections: 2,
                jobs_completed: 4,
                shards_completed: 16,
            },
            jobs: vec![JobStatus {
                key: "ab12cd34ef56ab78".into(),
                label: "strex-l1i-reduction".into(),
                shards: 8,
                done: 4,
                queued: 3,
                running: 1,
                waiters: 1,
            }],
            workers: vec![
                WorkerStatus {
                    name: "alpha".into(),
                    cores: 8,
                    scenarios: true,
                    last_seen_ms_ago: 120,
                    assignment: Some(AssignmentStatus {
                        job: "ab12cd34ef56ab78".into(),
                        index: 5,
                        count: 8,
                        running_ms: 900,
                        hedged: false,
                    }),
                },
                WorkerStatus {
                    name: "beta".into(),
                    cores: 1,
                    scenarios: false,
                    last_seen_ms_ago: 40,
                    assignment: None,
                },
            ],
            rate: vec![RateStatus {
                peer: "127.0.0.1".into(),
                tokens: 7,
            }],
        }
    }

    #[test]
    fn report_round_trips_through_its_json_fields() {
        let report = sample();
        let mut w = JsonWriter::new();
        w.begin_object();
        report.write_fields(&mut w);
        w.end_object();
        let text = w.finish();
        let doc = JsonValue::parse(&text).expect("valid json");
        let parsed = StatusReport::from_json_value(&doc).expect("parses");
        assert_eq!(parsed, report);
    }

    #[test]
    fn empty_report_round_trips() {
        let report = StatusReport::default();
        let mut w = JsonWriter::new();
        w.begin_object();
        report.write_fields(&mut w);
        w.end_object();
        let doc = JsonValue::parse(&w.finish()).expect("valid json");
        assert_eq!(StatusReport::from_json_value(&doc).expect("parses"), report);
    }

    #[test]
    fn display_covers_jobs_workers_and_rate_state() {
        let text = sample().to_string();
        assert!(text.contains("1 job(s) in flight"), "{text}");
        assert!(text.contains("3 shard(s) queued"), "{text}");
        assert!(text.contains("strex-l1i-reduction"), "{text}");
        assert!(text.contains("4/8 shard(s) done"), "{text}");
        assert!(text.contains("running shard 5/8"), "{text}");
        assert!(text.contains("worker beta (1 core(s)): idle"), "{text}");
        assert!(text.contains("rate 127.0.0.1: 7 token(s)"), "{text}");
    }
}
