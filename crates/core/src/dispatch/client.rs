//! The submitter half of the dispatcher: one blocking call per campaign.
//!
//! A submission is a single round trip — send one `submit` frame, block
//! until the coordinator streams the merged result (or a rejection) back.
//! Idempotency lives coordinator-side ([`super::job_key`]): re-submitting
//! the same spec attaches to the in-flight job or returns the cached
//! result, so a submitter that times out and retries never causes the
//! matrix to run twice.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::campaign::CampaignResult;

use super::proto::{write_message, FrameReader, Message};
use super::DispatchError;

/// Submits `campaign` split `shards` ways and blocks until the merged
/// [`CampaignResult`] arrives.
pub fn submit(
    addr: impl ToSocketAddrs,
    campaign: &str,
    shards: usize,
) -> Result<CampaignResult, DispatchError> {
    let mut stream = TcpStream::connect(addr)?;
    write_message(
        &mut stream,
        &Message::Submit {
            campaign: campaign.to_string(),
            shards,
        },
    )?;
    let mut reader = FrameReader::new(std::io::BufReader::new(stream));
    match reader.next_message().map_err(DispatchError::Proto)? {
        Some(Message::Result { result, .. }) => Ok(result),
        Some(Message::Reject { message }) => Err(DispatchError::Rejected(message)),
        Some(other) => Err(DispatchError::Protocol(format!(
            "coordinator answered a submission with a {:?} frame",
            other.type_name()
        ))),
        None => Err(DispatchError::Protocol(
            "coordinator closed the connection before answering".to_string(),
        )),
    }
}

/// [`TcpStream::connect`] with retries: tries every `delay` until
/// `attempts` runs out. For CLI and CI use, where the coordinator and its
/// workers start concurrently and the first connect can race the bind.
pub fn connect_with_retry(
    addr: impl ToSocketAddrs + Copy,
    attempts: usize,
    delay: Duration,
) -> std::io::Result<TcpStream> {
    let mut last = None;
    for attempt in 0..attempts.max(1) {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = Some(e),
        }
        if attempt + 1 < attempts {
            std::thread::sleep(delay);
        }
    }
    Err(last.unwrap_or_else(|| std::io::Error::other("no connection attempts made")))
}
