//! The submitter half of the dispatcher: one blocking call per request.
//!
//! A submission is a single round trip — send one `submit` frame, block
//! until the coordinator streams the merged result (or a rejection) back.
//! Idempotency lives coordinator-side ([`super::job_key`]): re-submitting
//! the same spec attaches to the in-flight job or returns the cached
//! result, so a submitter that times out and retries never causes the
//! matrix to run twice. [`submit_scenario`] is the remote half of
//! `repro check`: the fleet runs the scenario's declared matrix and the
//! coordinator returns its per-assertion diagnostics alongside the
//! merged result. [`status`] asks a coordinator for one fleet snapshot.

use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use crate::campaign::CampaignResult;
use crate::scenario::{AssertionOutcome, Scenario};

use super::proto::{write_message, FrameReader, JobSpec, Message};
use super::status::StatusReport;
use super::DispatchError;

/// One submit round trip: send the spec, block for `result` or `reject`.
fn submit_spec(
    addr: impl ToSocketAddrs,
    work: JobSpec,
    shards: usize,
) -> Result<(CampaignResult, Vec<AssertionOutcome>), DispatchError> {
    let mut stream = TcpStream::connect(addr)?;
    write_message(&mut stream, &Message::Submit { work, shards })?;
    let mut reader = FrameReader::new(std::io::BufReader::new(stream));
    match reader.next_message().map_err(DispatchError::Proto)? {
        Some(Message::Result {
            result, outcomes, ..
        }) => Ok((result, outcomes)),
        Some(Message::Reject { reason, message }) => {
            Err(DispatchError::Rejected { reason, message })
        }
        Some(other) => Err(DispatchError::Protocol(format!(
            "coordinator answered a submission with a {:?} frame",
            other.type_name()
        ))),
        None => Err(DispatchError::Protocol(
            "coordinator closed the connection before answering".to_string(),
        )),
    }
}

/// Submits the catalog campaign `campaign` split `shards` ways and blocks
/// until the merged [`CampaignResult`] arrives.
pub fn submit(
    addr: impl ToSocketAddrs,
    campaign: &str,
    shards: usize,
) -> Result<CampaignResult, DispatchError> {
    submit_spec(addr, JobSpec::Catalog(campaign.to_string()), shards).map(|(result, _)| result)
}

/// Submits a full scenario document split `shards` ways and blocks until
/// the merged result and the coordinator-evaluated per-assertion
/// diagnostics arrive — the same outcomes, in the same declaration
/// order, an in-process `repro check` would compute.
pub fn submit_scenario(
    addr: impl ToSocketAddrs,
    scenario: &Scenario,
    shards: usize,
) -> Result<(CampaignResult, Vec<AssertionOutcome>), DispatchError> {
    submit_spec(addr, JobSpec::Scenario(Arc::new(scenario.clone())), shards)
}

/// Asks a coordinator for one fleet snapshot. The coordinator leaves the
/// connection open after answering, but this convenience call makes a
/// fresh connection per poll; a watcher that wants one socket can speak
/// [`Message::StatusRequest`] itself.
pub fn status(addr: impl ToSocketAddrs) -> Result<StatusReport, DispatchError> {
    let mut stream = TcpStream::connect(addr)?;
    write_message(&mut stream, &Message::StatusRequest)?;
    let mut reader = FrameReader::new(std::io::BufReader::new(stream));
    match reader.next_message().map_err(DispatchError::Proto)? {
        Some(Message::Status { report }) => Ok(report),
        Some(Message::Reject { reason, message }) => {
            Err(DispatchError::Rejected { reason, message })
        }
        Some(other) => Err(DispatchError::Protocol(format!(
            "coordinator answered a status request with a {:?} frame",
            other.type_name()
        ))),
        None => Err(DispatchError::Protocol(
            "coordinator closed the connection before answering".to_string(),
        )),
    }
}

/// [`TcpStream::connect`] with retries: tries every `delay` until
/// `attempts` runs out. For CLI and CI use, where the coordinator and its
/// workers start concurrently and the first connect can race the bind.
pub fn connect_with_retry(
    addr: impl ToSocketAddrs + Copy,
    attempts: usize,
    delay: Duration,
) -> std::io::Result<TcpStream> {
    let mut last = None;
    for attempt in 0..attempts.max(1) {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = Some(e),
        }
        if attempt + 1 < attempts {
            std::thread::sleep(delay);
        }
    }
    Err(last.unwrap_or_else(|| std::io::Error::other("no connection attempts made")))
}
