//! The submitter half of the dispatcher: one blocking call per request.
//!
//! A submission is a single round trip — send one `submit` frame, block
//! until the coordinator streams the merged result (or a rejection) back.
//! Idempotency lives coordinator-side ([`super::job_key`]): re-submitting
//! the same spec attaches to the in-flight job or returns the cached
//! result, so a submitter that times out and retries never causes the
//! matrix to run twice. [`submit_scenario`] is the remote half of
//! `repro check`: the fleet runs the scenario's declared matrix and the
//! coordinator returns its per-assertion diagnostics alongside the
//! merged result. [`status`] asks a coordinator for one fleet snapshot.
//!
//! That same idempotency is what makes the retry wrappers safe:
//! [`submit_with_retry`] / [`submit_scenario_with_retry`] reconnect and
//! resubmit across coordinator restarts under a jittered exponential
//! [`Backoff`], and because the job key is a pure function of the spec,
//! a resubmission lands on the in-flight job or the finished-result
//! cache (journal-restored, if the coordinator runs with `--journal`) —
//! never on a duplicate execution. Typed rejections are *not* retried:
//! the coordinator said no, and asking again louder is how a fleet gets
//! a retry storm.

use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use crate::campaign::CampaignResult;
use crate::scenario::{AssertionOutcome, Scenario};

use super::proto::{write_message, FrameReader, JobSpec, Message};
use super::status::StatusReport;
use super::DispatchError;

/// Capped exponential backoff with deterministic, seeded jitter.
///
/// Delay `n` is drawn uniformly from `[exp/2, exp]` where
/// `exp = min(cap_ms, base_ms << n)` — "equal jitter", so a fleet of
/// clients that all observed the same coordinator crash does not
/// reconnect in lockstep, but no delay ever collapses to zero. The
/// jitter source is a self-contained xorshift64* stream seeded
/// explicitly: two clients seed differently (the default seeds from the
/// process id and a monotonic counter), while a test that pins the seed
/// gets the exact delay sequence back.
#[derive(Clone, Debug)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    state: u64,
    attempt: u32,
}

impl Backoff {
    /// A backoff starting at `base_ms` and doubling up to `cap_ms`,
    /// jittered from `seed`.
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Backoff {
        Backoff {
            base_ms: base_ms.max(1),
            cap_ms: cap_ms.max(1),
            // SplitMix64 scramble so seed 0 (and other degenerate
            // seeds) still yields a usable xorshift state.
            state: splitmix64(seed),
            attempt: 0,
        }
    }

    /// The next delay in the sequence, advancing the attempt counter.
    pub fn next_delay_ms(&mut self) -> u64 {
        let shift = self.attempt.min(32);
        let exp = self
            .base_ms
            .saturating_mul(1u64 << shift)
            .min(self.cap_ms)
            .max(1);
        self.attempt = self.attempt.saturating_add(1);
        let half = exp / 2;
        half + self.next_u64() % (exp - half + 1)
    }

    /// Resets the exponent (not the jitter stream) — call after a
    /// *successful* round trip so the next failure starts cheap again.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*: tiny, deterministic, plenty for jitter.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let z = z ^ (z >> 31);
    // xorshift64* requires a non-zero state; 2^-64 of seeds land here.
    if z == 0 {
        0x9E37_79B9_7F4A_7C15
    } else {
        z
    }
}

/// A process-unique backoff seed: the pid scrambled with a monotonic
/// counter, so concurrent clients in one process jitter independently.
fn process_seed() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    splitmix64((u64::from(std::process::id()) << 32) ^ n)
}

/// One submit round trip: send the spec, block for `result` or `reject`.
fn submit_spec(
    addr: impl ToSocketAddrs,
    work: JobSpec,
    shards: usize,
) -> Result<(CampaignResult, Vec<AssertionOutcome>), DispatchError> {
    let mut stream = TcpStream::connect(addr)?;
    write_message(&mut stream, &Message::Submit { work, shards })?;
    let mut reader = FrameReader::new(std::io::BufReader::new(stream));
    match reader.next_message().map_err(DispatchError::Proto)? {
        Some(Message::Result {
            result, outcomes, ..
        }) => Ok((result, outcomes)),
        Some(Message::Reject { reason, message }) => {
            Err(DispatchError::Rejected { reason, message })
        }
        Some(other) => Err(DispatchError::Protocol(format!(
            "coordinator answered a submission with a {:?} frame",
            other.type_name()
        ))),
        None => Err(DispatchError::Protocol(
            "coordinator closed the connection before answering".to_string(),
        )),
    }
}

/// Whether a submission failure is worth resubmitting: transport-class
/// failures (connect refused, mid-stream EOF when the coordinator died
/// holding our waiter slot) are; typed rejections and in-band protocol
/// violations are answers, not outages.
fn retryable(e: &DispatchError) -> bool {
    match e {
        DispatchError::Io(_) | DispatchError::Proto(_) => true,
        // "closed before answering" is the submitter-visible shape of a
        // coordinator crash: the connection died with our waiter slot.
        DispatchError::Protocol(m) => m.contains("closed the connection"),
        DispatchError::Rejected { .. } | DispatchError::Runner { .. } => false,
    }
}

fn submit_spec_with_retry(
    addr: impl ToSocketAddrs + Copy,
    work: JobSpec,
    shards: usize,
    attempts: usize,
) -> Result<(CampaignResult, Vec<AssertionOutcome>), DispatchError> {
    let mut backoff = Backoff::new(100, 5_000, process_seed());
    let mut last = None;
    for attempt in 0..attempts.max(1) {
        match submit_spec(addr, work.clone(), shards) {
            Ok(answer) => return Ok(answer),
            Err(e) if retryable(&e) => {
                if attempt + 1 < attempts {
                    let delay = backoff.next_delay_ms();
                    eprintln!(
                        "dispatch: submission attempt {} failed ({e}); retrying in {delay} ms",
                        attempt + 1
                    );
                    std::thread::sleep(Duration::from_millis(delay));
                }
                last = Some(e);
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.unwrap_or(DispatchError::Protocol(
        "no submission attempts made".to_string(),
    )))
}

/// Submits the catalog campaign `campaign` split `shards` ways and blocks
/// until the merged [`CampaignResult`] arrives.
pub fn submit(
    addr: impl ToSocketAddrs,
    campaign: &str,
    shards: usize,
) -> Result<CampaignResult, DispatchError> {
    submit_spec(addr, JobSpec::Catalog(campaign.to_string()), shards).map(|(result, _)| result)
}

/// [`submit`] surviving coordinator outages: transport-class failures
/// reconnect and resubmit under a jittered exponential backoff, up to
/// `attempts` tries. Safe because submission is idempotent — the FNV job
/// key re-attaches to the in-flight or journal-restored job.
pub fn submit_with_retry(
    addr: impl ToSocketAddrs + Copy,
    campaign: &str,
    shards: usize,
    attempts: usize,
) -> Result<CampaignResult, DispatchError> {
    submit_spec_with_retry(
        addr,
        JobSpec::Catalog(campaign.to_string()),
        shards,
        attempts,
    )
    .map(|(result, _)| result)
}

/// Submits a full scenario document split `shards` ways and blocks until
/// the merged result and the coordinator-evaluated per-assertion
/// diagnostics arrive — the same outcomes, in the same declaration
/// order, an in-process `repro check` would compute.
pub fn submit_scenario(
    addr: impl ToSocketAddrs,
    scenario: &Scenario,
    shards: usize,
) -> Result<(CampaignResult, Vec<AssertionOutcome>), DispatchError> {
    submit_spec(addr, JobSpec::Scenario(Arc::new(scenario.clone())), shards)
}

/// [`submit_scenario`] with the same reconnect-and-resubmit behavior as
/// [`submit_with_retry`].
pub fn submit_scenario_with_retry(
    addr: impl ToSocketAddrs + Copy,
    scenario: &Scenario,
    shards: usize,
    attempts: usize,
) -> Result<(CampaignResult, Vec<AssertionOutcome>), DispatchError> {
    submit_spec_with_retry(
        addr,
        JobSpec::Scenario(Arc::new(scenario.clone())),
        shards,
        attempts,
    )
}

/// Asks a coordinator for one fleet snapshot. The coordinator leaves the
/// connection open after answering, but this convenience call makes a
/// fresh connection per poll; a watcher that wants one socket can speak
/// [`Message::StatusRequest`] itself.
pub fn status(addr: impl ToSocketAddrs) -> Result<StatusReport, DispatchError> {
    let mut stream = TcpStream::connect(addr)?;
    write_message(&mut stream, &Message::StatusRequest)?;
    let mut reader = FrameReader::new(std::io::BufReader::new(stream));
    match reader.next_message().map_err(DispatchError::Proto)? {
        Some(Message::Status { report }) => Ok(report),
        Some(Message::Reject { reason, message }) => {
            Err(DispatchError::Rejected { reason, message })
        }
        Some(other) => Err(DispatchError::Protocol(format!(
            "coordinator answered a status request with a {:?} frame",
            other.type_name()
        ))),
        None => Err(DispatchError::Protocol(
            "coordinator closed the connection before answering".to_string(),
        )),
    }
}

/// [`TcpStream::connect`] with retries under a jittered exponential
/// backoff: `delay` is the base (doubling per attempt, capped at 100×),
/// jittered so concurrently starting processes don't stampede the bind.
/// For CLI and CI use, where the coordinator and its workers start
/// concurrently and the first connect can race the bind.
pub fn connect_with_retry(
    addr: impl ToSocketAddrs + Copy,
    attempts: usize,
    delay: Duration,
) -> std::io::Result<TcpStream> {
    let base = u64::try_from(delay.as_millis()).unwrap_or(u64::MAX).max(1);
    connect_with_retry_seeded(addr, attempts, base, process_seed(), &mut |d| {
        std::thread::sleep(d)
    })
}

/// The deterministic core of [`connect_with_retry`]: explicit jitter
/// seed, injected sleep. Tests pin the seed and capture the delays a
/// fake clock would serve; production passes `thread::sleep`.
pub fn connect_with_retry_seeded(
    addr: impl ToSocketAddrs + Copy,
    attempts: usize,
    base_ms: u64,
    seed: u64,
    sleep: &mut dyn FnMut(Duration),
) -> std::io::Result<TcpStream> {
    let mut backoff = Backoff::new(base_ms, base_ms.saturating_mul(100), seed);
    let mut last = None;
    for attempt in 0..attempts.max(1) {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = Some(e),
        }
        if attempt + 1 < attempts {
            sleep(Duration::from_millis(backoff.next_delay_ms()));
        }
    }
    Err(last.unwrap_or_else(|| std::io::Error::other("no connection attempts made")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_caps_and_stays_in_the_jitter_window() {
        let mut b = Backoff::new(100, 1_000, 42);
        let mut exp = 100u64;
        for _ in 0..12 {
            let d = b.next_delay_ms();
            assert!(
                d >= exp / 2 && d <= exp,
                "delay {d} outside [{}, {exp}]",
                exp / 2
            );
            exp = (exp * 2).min(1_000);
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed_and_varies_across_seeds() {
        let seq = |seed: u64| -> Vec<u64> {
            let mut b = Backoff::new(50, 10_000, seed);
            (0..8).map(|_| b.next_delay_ms()).collect()
        };
        assert_eq!(seq(7), seq(7), "same seed, same delays");
        assert_ne!(seq(7), seq(8), "different seeds jitter differently");
        // Degenerate seed 0 still produces in-window jitter.
        let zeros = seq(0);
        assert!(zeros.iter().all(|&d| d >= 25));
    }

    #[test]
    fn backoff_reset_restarts_the_exponent() {
        let mut b = Backoff::new(100, 100_000, 3);
        for _ in 0..5 {
            b.next_delay_ms();
        }
        b.reset();
        let d = b.next_delay_ms();
        assert!(d <= 100, "post-reset delay {d} should be back at the base");
    }

    #[test]
    fn connect_with_retry_seeded_sleeps_the_exact_backoff_sequence() {
        use super::super::clock::{Clock, FakeClock};
        // An address that refuses: bind an ephemeral port, then drop the
        // listener before connecting to it.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("addr")
        };
        let clock = FakeClock::new();
        let mut slept = Vec::new();
        let err = connect_with_retry_seeded(addr, 4, 10, 99, &mut |d| {
            let ms = u64::try_from(d.as_millis()).expect("small delay");
            clock.advance(ms);
            slept.push(ms);
        })
        .expect_err("nothing listens there");
        assert_eq!(slept.len(), 3, "4 attempts sleep between them thrice");
        // The injected sleep saw exactly the pinned seed's delay sequence.
        let mut reference = Backoff::new(10, 1_000, 99);
        let expected: Vec<u64> = (0..3).map(|_| reference.next_delay_ms()).collect();
        assert_eq!(slept, expected);
        assert_eq!(clock.now_ms(), expected.iter().sum::<u64>());
        let _ = err;
    }

    #[test]
    fn rejections_are_final_but_transport_failures_retry() {
        use super::super::proto::RejectReason;
        assert!(retryable(&DispatchError::Io(std::io::Error::other("gone"))));
        assert!(retryable(&DispatchError::Protocol(
            "coordinator closed the connection before answering".into()
        )));
        assert!(!retryable(&DispatchError::Rejected {
            reason: RejectReason::RateLimited,
            message: "slow down".into(),
        }));
        assert!(!retryable(&DispatchError::Protocol(
            "coordinator answered a submission with a \"status\" frame".into()
        )));
    }
}
