//! Configuration validation errors.

use std::error::Error;
use std::fmt;

/// Why a [`SimConfig`](crate::config::SimConfig) failed validation.
///
/// Returned by [`SimConfigBuilder::build`](crate::config::SimConfigBuilder::build)
/// and [`SimConfig::validate`](crate::config::SimConfig::validate).
#[derive(Clone, Eq, PartialEq, Debug)]
#[non_exhaustive]
pub enum ConfigError {
    /// The system has no cores.
    ZeroCores,
    /// More cores than core IDs (`CoreId` is a `u16`, so at most
    /// [`MAX_CORES`](crate::config::MAX_CORES) cores are addressable).
    TooManyCores {
        /// The rejected core count.
        requested: usize,
    },
    /// STREX teams must hold at least one transaction.
    ZeroTeamSize,
    /// Team formation cannot examine fewer transactions than fit in one
    /// team (Section 4.3: the window is where teams are drawn from).
    FormationWindowTooSmall {
        /// The rejected window.
        window: usize,
        /// The configured team size it must cover.
        team_size: usize,
    },
    /// SLICC's miss shift-vector is a 128-bit register; wider windows
    /// cannot be represented.
    SliccWindowTooWide {
        /// The rejected window length in fetches.
        window: usize,
    },
    /// A cache level has zero capacity or zero associativity.
    ZeroCacheGeometry {
        /// Which cache: `"L1-I"`, `"L1-D"`, or `"L2"`.
        cache: &'static str,
    },
    /// A cache level's capacity does not divide evenly into
    /// `assoc`-way sets of 64-byte blocks.
    UnevenCacheCapacity {
        /// Which cache: `"L1-I"`, `"L1-D"`, or `"L2"`.
        cache: &'static str,
    },
    /// A cache level's set count is not a power of two, which the
    /// single-probe (mask-indexed) cache lookup requires. All of the
    /// paper's geometries (Table 2) qualify.
    NonPowerOfTwoSets {
        /// Which cache: `"L1-I"`, `"L1-D"`, or `"L2"`.
        cache: &'static str,
        /// The rejected set count.
        sets: usize,
    },
    /// The scheduler name is not present in the registry consulted.
    UnknownScheduler {
        /// The name that failed to resolve.
        name: String,
    },
    /// A [`ShardSpec`](crate::campaign::ShardSpec) does not name a valid
    /// shard: the count is zero or the index is out of range.
    InvalidShard {
        /// The rejected shard index.
        index: usize,
        /// The rejected shard count.
        count: usize,
    },
    /// A [`ShardCheckpoint`](crate::campaign::ShardCheckpoint) does not
    /// belong to the shard (or matrix) it was offered to resume.
    CheckpointMismatch {
        /// What disagreed — spec, cursor, or a cell key.
        detail: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroCores => write!(f, "core count must be at least 1"),
            ConfigError::TooManyCores { requested } => write!(
                f,
                "core count {requested} exceeds the {} addressable by a u16 CoreId",
                crate::config::MAX_CORES
            ),
            ConfigError::ZeroTeamSize => write!(f, "STREX team size must be at least 1"),
            ConfigError::FormationWindowTooSmall { window, team_size } => write!(
                f,
                "formation window {window} cannot cover a team of {team_size}"
            ),
            ConfigError::SliccWindowTooWide { window } => write!(
                f,
                "SLICC miss window {window} exceeds the 128-bit shift register"
            ),
            ConfigError::ZeroCacheGeometry { cache } => {
                write!(f, "{cache} cache has zero capacity or associativity")
            }
            ConfigError::UnevenCacheCapacity { cache } => {
                write!(f, "{cache} cache capacity does not divide evenly into sets")
            }
            ConfigError::NonPowerOfTwoSets { cache, sets } => write!(
                f,
                "{cache} cache has {sets} sets; set counts must be powers of two"
            ),
            ConfigError::UnknownScheduler { name } => {
                write!(f, "scheduler {name:?} is not registered")
            }
            ConfigError::InvalidShard { index, count } => {
                write!(
                    f,
                    "shard {index}/{count} is not a valid shard of a campaign"
                )
            }
            ConfigError::CheckpointMismatch { detail } => {
                write!(f, "checkpoint does not match this shard: {detail}")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_specific() {
        assert!(ConfigError::ZeroCores.to_string().contains("at least 1"));
        assert!(ConfigError::TooManyCores { requested: 1 << 20 }
            .to_string()
            .contains("1048576"));
        assert!(ConfigError::FormationWindowTooSmall {
            window: 3,
            team_size: 8
        }
        .to_string()
        .contains("3"));
        assert!(ConfigError::ZeroCacheGeometry { cache: "L2" }
            .to_string()
            .contains("L2"));
        assert!(ConfigError::NonPowerOfTwoSets {
            cache: "L1-I",
            sets: 3
        }
        .to_string()
        .contains("3 sets"));
        assert!(ConfigError::UnevenCacheCapacity { cache: "L2" }
            .to_string()
            .contains("divide evenly"));
        assert!(ConfigError::UnknownScheduler {
            name: "nope".into()
        }
        .to_string()
        .contains("nope"));
        assert!(ConfigError::InvalidShard { index: 3, count: 2 }
            .to_string()
            .contains("3/2"));
    }
}
