//! Hardware storage-cost accounting (Table 4 and Section 5.6).
//!
//! STREX needs two units per core: a thread scheduler (thread queue,
//! phase-ID counter, auxiliary phase-ID table) and a team formation unit
//! (team management table). The hybrid additionally carries SLICC's cache
//! monitor (missed-tag queue, miss shift-vector, cache signature). This
//! module computes the bit budgets from first principles so configuration
//! changes (team size, cache geometry) re-derive the table.

/// Bit widths from Table 4.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CostParams {
    /// Thread queue entries (= maximum team size considered; Table 4: 20).
    pub thread_queue_entries: u64,
    /// Thread id bits (Table 4: 12).
    pub thread_id_bits: u64,
    /// Pointer-to-context bits (Table 4: 48).
    pub ctx_pointer_bits: u64,
    /// phaseID bits (Table 4: 8).
    pub phase_bits: u64,
    /// L1-I blocks covered by the auxiliary phase-ID table (Table 4: 512).
    pub l1i_blocks: u64,
    /// Team management table entries (Table 4: 30).
    pub team_table_entries: u64,
    /// Timestamp bits per team entry (Table 4: 32).
    pub timestamp_bits: u64,
    /// Type-id bits (Table 4: 4).
    pub type_id_bits: u64,
    /// Team-id bits (Table 4: 4).
    pub team_id_bits: u64,
    /// Team-index bits (Table 4: 8).
    pub team_index_bits: u64,
    /// SLICC missed-tag queue bits (Table 4: 60).
    pub mtq_bits: u64,
    /// SLICC miss shift-vector bits (Table 4: 100).
    pub shift_vector_bits: u64,
    /// SLICC cache-signature bits (Table 4: 2K).
    pub signature_bits: u64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            thread_queue_entries: 20,
            thread_id_bits: 12,
            ctx_pointer_bits: 48,
            phase_bits: 8,
            l1i_blocks: 512,
            team_table_entries: 30,
            timestamp_bits: 32,
            type_id_bits: 4,
            team_id_bits: 4,
            team_index_bits: 8,
            mtq_bits: 60,
            shift_vector_bits: 100,
            signature_bits: 2048,
        }
    }
}

/// Derived storage budget, in bits, per core.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CostBreakdown {
    /// Thread-scheduler unit bits (queue + phase counter + PIDT).
    pub thread_scheduler_bits: u64,
    /// Team-formation unit bits (team management table).
    pub team_formation_bits: u64,
    /// SLICC cache-monitor bits (hybrid only).
    pub slicc_monitor_bits: u64,
}

impl CostBreakdown {
    /// Computes the breakdown from `params`.
    pub fn compute(params: &CostParams) -> Self {
        // Thread queue entry: ID + context pointer + lead flag bit.
        let queue_entry = params.thread_id_bits + params.ctx_pointer_bits + 1;
        let thread_scheduler_bits = params.thread_queue_entries * queue_entry
            + params.phase_bits
            + params.l1i_blocks * params.phase_bits;
        // Team management entry: ID + timestamp + type + team + index.
        let team_entry = params.thread_id_bits
            + params.timestamp_bits
            + params.type_id_bits
            + params.team_id_bits
            + params.team_index_bits;
        let team_formation_bits = params.team_table_entries * team_entry;
        let slicc_monitor_bits = params.mtq_bits + params.shift_vector_bits + params.signature_bits;
        CostBreakdown {
            thread_scheduler_bits,
            team_formation_bits,
            slicc_monitor_bits,
        }
    }

    /// STREX-only storage per core, in bytes.
    pub fn strex_bytes(&self) -> f64 {
        (self.thread_scheduler_bits + self.team_formation_bits) as f64 / 8.0
    }

    /// Hybrid (STREX + SLICC monitor) storage per core, in bytes.
    pub fn hybrid_bytes(&self) -> f64 {
        self.strex_bytes() + self.slicc_monitor_bits as f64 / 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_thread_scheduler_total() {
        let b = CostBreakdown::compute(&CostParams::default());
        // Table 4: 20 x (12 + 48 + 1) + 8 + 512 x 8 = 5324 bits.
        assert_eq!(b.thread_scheduler_bits, 5324);
        assert!((b.thread_scheduler_bits as f64 / 8.0 - 665.5).abs() < 1e-9);
    }

    #[test]
    fn table4_team_formation_total() {
        let b = CostBreakdown::compute(&CostParams::default());
        // Table 4: 30 x (12 + 32 + 4 + 4 + 8) = 1800 bits = 225 bytes.
        assert_eq!(b.team_formation_bits, 1800);
    }

    #[test]
    fn table4_slicc_monitor_total() {
        let b = CostBreakdown::compute(&CostParams::default());
        // Table 4: 60 + 100 + 2048 = 2208 bits = 276 bytes.
        assert_eq!(b.slicc_monitor_bits, 2208);
    }

    #[test]
    fn table4_grand_totals() {
        let b = CostBreakdown::compute(&CostParams::default());
        // STREX total: 5324 + 1800 = 7124 bits = 890.5 bytes
        // (Table 4 lists the scheduler as 5324 bits / 665.5 B and the team
        // unit as 1800 bits / 225 B; the paper's 665.5 B headline covers
        // the scheduler alone, with the hybrid at 1166.5 B.)
        assert!((b.strex_bytes() - 890.5).abs() < 1e-9);
        assert!((b.hybrid_bytes() - 1166.5).abs() < 1e-9);
    }

    #[test]
    fn cost_scales_with_team_size() {
        let p = CostParams {
            thread_queue_entries: 10,
            ..CostParams::default()
        };
        let small = CostBreakdown::compute(&p);
        let big = CostBreakdown::compute(&CostParams::default());
        assert!(small.thread_scheduler_bits < big.thread_scheduler_bits);
    }

    #[test]
    fn strex_under_two_percent_of_pif() {
        // Section 5.6: PIF needs ~40 KB per core; STREX < 2 % of that.
        let b = CostBreakdown::compute(&CostParams::default());
        let pif_bytes = 40.0 * 1024.0;
        assert!(b.strex_bytes() / pif_bytes < 0.025);
    }
}
