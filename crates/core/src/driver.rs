//! The simulation driver: replays transaction traces through the memory
//! hierarchy under a scheduling policy.
//!
//! Timing model (documented substitution, DESIGN.md §2): in-order cores
//! retiring one instruction per cycle, plus the memory stall cycles charged
//! by the hierarchy. Cores advance independently and are processed in
//! global cycle order through a priority queue, with shared-resource timing
//! (L2 slices, DRAM banks) keyed by each request's arrival cycle. The same
//! 1-IPC model underlies the paper's own motivation analysis (Section 2.2).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use strex_oltp::trace::MemRef;
use strex_oltp::workload::Workload;
use strex_sim::hierarchy::MemorySystem;
use strex_sim::ids::{CoreId, Cycle, ThreadId};

use crate::report::Report;
use crate::sched::registry::{self, SchedulerRegistry};
use crate::sched::{Decision, Scheduler};
use crate::thread::TxnThread;

pub use crate::config::SimConfig;

/// Events executed per core before re-entering the global cycle queue.
/// Coarse interleaving keeps heap traffic low; 64 events ≈ a few hundred
/// cycles, far finer than any scheduling time constant.
const BATCH_EVENTS: usize = 64;

/// Cycles an idle core waits before polling for newly runnable work.
const IDLE_POLL: Cycle = 200;

/// One core's execution state.
#[derive(Clone, Debug, Default)]
struct Core {
    current: Option<ThreadId>,
    cycle: Cycle,
}

/// Runs `workload` under `config` and returns the measured [`Report`].
///
/// The scheduler is resolved from the [global scheduler
/// registry](crate::sched::registry::global) by the configuration's
/// [`SchedulerKind::key`](crate::config::SchedulerKind::key); this is the
/// single-run compatibility wrapper over [`run_registered`]. For matrices
/// of runs, see [`Campaign`](crate::campaign::Campaign).
///
/// # Examples
///
/// ```no_run
/// use strex::config::SchedulerKind;
/// use strex::driver::{run, SimConfig};
/// use strex_oltp::workload::{Workload, WorkloadKind};
///
/// let w = Workload::preset_small(WorkloadKind::TpccW1, 8, 1);
/// let cfg = SimConfig::builder()
///     .cores(4)
///     .scheduler(SchedulerKind::Strex)
///     .build()
///     .expect("valid configuration");
/// let report = run(&w, &cfg);
/// println!("I-MPKI: {:.1}", report.i_mpki());
/// ```
pub fn run(workload: &Workload, config: &SimConfig) -> Report {
    run_registered(workload, config, registry::global())
}

/// Runs with the scheduler resolved by name from `reg` — the hook through
/// which custom [`SchedulerFactory`](crate::sched::registry::SchedulerFactory)
/// policies reach the driver.
///
/// # Panics
///
/// Panics if `config.scheduler.key()` is not registered in `reg`.
pub fn run_registered(
    workload: &Workload,
    config: &SimConfig,
    reg: &SchedulerRegistry,
) -> Report {
    let key = config.scheduler.key();
    let mut scheduler = reg
        .create(key, config)
        .unwrap_or_else(|| panic!("scheduler {key:?} is not registered"));
    run_with(workload, config, scheduler.as_mut())
}

/// Runs with a caller-provided scheduler (ablations, custom policies).
///
/// # Panics
///
/// Panics if `config` violates a [`SimConfig::validate`] invariant —
/// configurations assembled field-by-field (bypassing the builder) are
/// re-checked here, the chokepoint every run funnels through, so e.g. a
/// core count beyond the `u16` `CoreId` space fails loudly instead of
/// silently aliasing cores.
pub fn run_with(workload: &Workload, config: &SimConfig, scheduler: &mut dyn Scheduler) -> Report {
    if let Err(e) = config.validate() {
        panic!("invalid SimConfig: {e}");
    }
    let traces = workload.txns();
    let n_cores = config.system.n_cores;
    let mut mem = MemorySystem::new(config.system);
    let mut threads: Vec<TxnThread> = traces
        .iter()
        .enumerate()
        .map(|(i, t)| TxnThread::new(ThreadId::new(i as u32), i, t.txn_type(), 0))
        .collect();
    scheduler.init(&threads, traces, n_cores);

    let mut cores = vec![Core::default(); n_cores];
    let n_threads = threads.len();
    let mut completed = 0usize;
    // Min-heap of (next cycle, core index).
    let mut heap: BinaryHeap<Reverse<(Cycle, usize)>> =
        (0..n_cores).map(|c| Reverse((0, c))).collect();

    while completed < n_threads {
        let Reverse((now, c)) = heap.pop().expect("cores outlive pending work");
        let core_id = CoreId::new(c as u16);
        cores[c].cycle = cores[c].cycle.max(now);

        if cores[c].current.is_none() {
            match scheduler.next_thread(core_id, cores[c].cycle) {
                Some(tid) => {
                    cores[c].current = Some(tid);
                    // Restore the incoming context from the L2.
                    cores[c].cycle +=
                        mem.context_transfer(core_id, config.strex.ctx_state_blocks);
                    scheduler.on_sched_in(core_id, tid);
                }
                None => {
                    // No runnable work: poll again later if work may appear.
                    if scheduler.has_pending_work() || completed < n_threads {
                        heap.push(Reverse((cores[c].cycle + IDLE_POLL, c)));
                    }
                    continue;
                }
            }
        }

        let tid = cores[c].current.expect("assigned above");
        // Hoist the thread and trace borrows out of the event batch: the
        // scheduler and memory system never touch `threads`, so the inner
        // loop indexes neither `threads` nor `traces` per event.
        let thread = &mut threads[tid.as_usize()];
        let trace = &traces[thread.trace_idx()];
        // Local cycle accumulator; written back to `cores[c]` after the
        // batch (and kept in sync at every scheduler callback).
        let mut cycle = cores[c].cycle;
        let mut budget = BATCH_EVENTS;
        let mut reinsert_at: Option<Cycle> = None;

        while budget > 0 {
            budget -= 1;
            // Pipeline the memory model one event ahead: start pulling in
            // the L2-slice lines the *next* instruction fetch will probe
            // while the current event is simulated. Pure prefetch hint.
            if let Some(MemRef::IFetch { block: next, .. }) = thread.cursor().peek_at(trace, 1)
            {
                mem.prefetch_fetch(next);
            }
            match thread.cursor().peek(trace) {
                None => {
                    thread.mark_completed(cycle);
                    completed += 1;
                    scheduler.on_done(core_id, tid, cycle);
                    cores[c].current = None;
                    reinsert_at = Some(cycle);
                    break;
                }
                Some(MemRef::IFetch { block, instrs }) => {
                    // Victim monitor: a thread stops *before* a fill that
                    // would destroy the team's current-phase segment; the
                    // abandoned fetch re-executes when it is next scheduled.
                    if scheduler.pre_fetch(core_id, tid, block, &mem) == Decision::Switch {
                        cycle += mem.context_transfer(core_id, config.strex.ctx_state_blocks);
                        scheduler.on_switch(core_id, tid);
                        cores[c].current = None;
                        reinsert_at = Some(cycle);
                        break;
                    }
                    let tag = scheduler.phase_tag(core_id);
                    let fetch = mem.fetch_inst(core_id, block, tag, cycle);
                    mem.add_instructions(core_id, instrs as u64);
                    cycle += instrs as u64 + fetch.stall;
                    thread.cursor_mut().advance();
                    match scheduler.on_fetch(core_id, tid, block, &fetch, &mem) {
                        Decision::Continue => {}
                        Decision::Switch => {
                            // Save the outgoing context to the L2.
                            cycle +=
                                mem.context_transfer(core_id, config.strex.ctx_state_blocks);
                            scheduler.on_switch(core_id, tid);
                            cores[c].current = None;
                            reinsert_at = Some(cycle);
                            break;
                        }
                        Decision::Migrate(dst) => {
                            cycle +=
                                mem.context_transfer(core_id, config.strex.ctx_state_blocks);
                            scheduler.on_migrate(tid, dst);
                            cores[c].current = None;
                            reinsert_at = Some(cycle);
                            // Wake the destination core if it went idle.
                            heap.push(Reverse((cycle, dst.as_usize())));
                            break;
                        }
                    }
                }
                Some(MemRef::Load { addr }) => {
                    let access = mem.access_data(core_id, addr, false, cycle);
                    cycle += access.stall;
                    thread.cursor_mut().advance();
                }
                Some(MemRef::Store { addr }) => {
                    // Stores retire through the store buffer; the miss is
                    // tracked (and occupies the hierarchy) but does not
                    // stall the core.
                    let _ = mem.access_data(core_id, addr, true, cycle);
                    thread.cursor_mut().advance();
                }
            }
        }
        cores[c].cycle = cycle;
        if completed < n_threads {
            heap.push(Reverse((reinsert_at.unwrap_or(cycle), c)));
        }
    }

    let makespan = threads
        .iter()
        .filter_map(TxnThread::completed)
        .max()
        .unwrap_or(0);
    let latencies: Vec<Cycle> = threads.iter().filter_map(TxnThread::latency).collect();
    let mut stats = mem.stats().clone();
    stats.shared = mem.shared_stats();

    Report {
        scheduler: scheduler.name(),
        workload: workload.name().to_string(),
        n_cores,
        makespan,
        transactions: threads.len(),
        latencies,
        stats,
        context_switches: scheduler.context_switches(),
        migrations: scheduler.migrations(),
        hybrid_choice: scheduler.hybrid_choice(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerKind;
    use strex_oltp::workload::WorkloadKind;

    fn small_workload() -> Workload {
        Workload::preset_small(WorkloadKind::TpccW1, 6, 11)
    }

    fn cfg(cores: usize, kind: SchedulerKind) -> SimConfig {
        SimConfig::builder()
            .cores(cores)
            .scheduler(kind)
            .build()
            .expect("valid test configuration")
    }

    #[test]
    fn baseline_completes_all_transactions() {
        let w = small_workload();
        let r = run(&w, &cfg(2, SchedulerKind::Baseline));
        assert_eq!(r.transactions, 6);
        assert_eq!(r.latencies.len(), 6);
        assert!(r.makespan > 0);
        assert!(r.stats.instructions() > 0);
    }

    #[test]
    fn all_schedulers_complete() {
        let w = small_workload();
        for kind in SchedulerKind::ALL {
            let r = run(&w, &cfg(2, kind));
            assert_eq!(r.transactions, 6, "{kind}");
            assert_eq!(
                r.stats.instructions(),
                w.total_instructions(),
                "{kind}: every instruction must retire exactly once"
            );
        }
    }

    #[test]
    fn more_cores_do_not_slow_the_baseline() {
        let w = Workload::preset_small(WorkloadKind::TpccW1, 8, 3);
        let two = run(&w, &cfg(2, SchedulerKind::Baseline));
        let eight = run(&w, &cfg(8, SchedulerKind::Baseline));
        assert!(
            eight.makespan < two.makespan,
            "8-core {} vs 2-core {}",
            eight.makespan,
            two.makespan
        );
    }

    #[test]
    fn strex_reduces_instruction_misses_on_same_type_pool() {
        use strex_oltp::tpcc::TpccTxnKind;
        let w = Workload::tpcc_same_type(TpccTxnKind::Payment, 1, 8, 5);
        let base = run(&w, &cfg(2, SchedulerKind::Baseline));
        let strex = run(&w, &cfg(2, SchedulerKind::Strex));
        assert!(
            strex.i_mpki() < base.i_mpki(),
            "STREX {} vs base {}",
            strex.i_mpki(),
            base.i_mpki()
        );
    }

    #[test]
    fn deterministic_runs() {
        let w = small_workload();
        let cfg = cfg(2, SchedulerKind::Strex);
        let a = run(&w, &cfg);
        let b = run(&w, &cfg);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.latencies, b.latencies);
    }
}
