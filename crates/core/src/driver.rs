//! The simulation driver: replays transaction traces through the memory
//! hierarchy under a scheduling policy.
//!
//! Timing model (documented substitution, DESIGN.md §2): in-order cores
//! retiring one instruction per cycle, plus the memory stall cycles charged
//! by the hierarchy. Cores advance independently and are processed in
//! global cycle order through a priority queue, with shared-resource timing
//! (L2 slices, DRAM banks) keyed by each request's arrival cycle. The same
//! 1-IPC model underlies the paper's own motivation analysis (Section 2.2).
//!
//! # Monomorphized loops
//!
//! The inner event loop (`sim_loop`) is generic over the scheduler type
//! (`S: Scheduler + ?Sized`) and two `const` switches:
//!
//! * **Typed instantiation.** Through [`run_typed`] (reached from
//!   [`run`]/[`run_registered`]/campaigns via
//!   [`SchedulerFactory::run_typed`])
//!   the loop is instantiated *per concrete scheduler type* — every
//!   per-event scheduler call (`pre_fetch_probed`, `phase_tag`,
//!   `on_fetch`) is a static, inlinable call instead of a vtable load.
//!   [`run_with`] keeps the `dyn Scheduler` instantiation for
//!   caller-provided policies.
//! * **`PASSIVE`**: for schedulers that declare [`Scheduler::is_passive`]
//!   (they never interpose on individual events — no victim monitoring, no
//!   switch/migrate decisions, phase tag always zero), the per-event calls
//!   and the `Decision` handling compile away entirely.
//!   Scheduling-boundary calls (`next_thread`, `on_sched_in`, `on_done`)
//!   still reach the scheduler, so queue policy is preserved.
//! * **`FUSED`**: active schedulers take the fused-probe fetch path — one
//!   L1-I tag scan ([`MemorySystem::probe_fetch`]) serves both the victim
//!   monitor ([`Scheduler::pre_fetch_probed`]) and the demand access
//!   ([`MemorySystem::fetch_inst_probed`]), where the unfused path scans
//!   the same set twice (STREX's `peek_victim` + `fetch_inst`).
//!
//! Every instantiation replays the same packed event stream with the same
//! core batching and the same cycle-ordered heap, so results are
//! bit-identical across all of them — pinned by
//! `passive_fast_path_matches_generic` and `typed_loop_matches_generic`
//! below, and by the golden snapshot.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use strex_oltp::trace::{MemRef, PackedRef};
use strex_oltp::workload::Workload;
use strex_sim::addr::BlockAddr;
use strex_sim::hierarchy::MemorySystem;
use strex_sim::ids::{CoreId, Cycle, ThreadId};

use crate::report::Report;
use crate::sched::registry::{self, SchedulerFactory, SchedulerRegistry};
use crate::sched::{Decision, Scheduler};
use crate::thread::TxnThread;

pub use crate::config::SimConfig;

/// Events executed per core before re-entering the global cycle queue.
/// Coarse interleaving keeps heap traffic low; 64 events ≈ a few hundred
/// cycles, far finer than any scheduling time constant.
const BATCH_EVENTS: usize = 64;

/// Cycles an idle core waits before polling for newly runnable work.
const IDLE_POLL: Cycle = 200;

/// One core's execution state.
#[derive(Clone, Debug, Default)]
struct Core {
    current: Option<ThreadId>,
    cycle: Cycle,
}

/// Reusable per-run buffers: the thread table, per-core state and the
/// cycle-ordered heap. A campaign worker keeps one `SimScratch` and runs
/// every cell of its shard through it, so those allocations happen once
/// per worker instead of once per cell; all entry points that don't take a
/// scratch create a fresh one. Contents are fully reset at the start of
/// each run — reuse is invisible to results (the sharded-vs-sequential
/// campaign tests pin this).
#[derive(Debug, Default)]
pub struct SimScratch {
    threads: Vec<TxnThread>,
    cores: Vec<Core>,
    heap: BinaryHeap<Reverse<(Cycle, usize)>>,
}

impl SimScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        SimScratch::default()
    }
}

/// Runs `workload` under `config` and returns the measured [`Report`].
///
/// The scheduler is resolved from the [global scheduler
/// registry](crate::sched::registry::global) by the configuration's
/// [`SchedulerKind::key`](crate::config::SchedulerKind::key); this is the
/// single-run compatibility wrapper over [`run_registered`]. For matrices
/// of runs, see [`Campaign`](crate::campaign::Campaign).
///
/// # Examples
///
/// ```no_run
/// use strex::config::SchedulerKind;
/// use strex::driver::{run, SimConfig};
/// use strex_oltp::workload::{Workload, WorkloadKind};
///
/// let w = Workload::preset_small(WorkloadKind::TpccW1, 8, 1);
/// let cfg = SimConfig::builder()
///     .cores(4)
///     .scheduler(SchedulerKind::Strex)
///     .build()
///     .expect("valid configuration");
/// let report = run(&w, &cfg);
/// println!("I-MPKI: {:.1}", report.i_mpki());
/// ```
pub fn run(workload: &Workload, config: &SimConfig) -> Report {
    run_registered(workload, config, registry::global())
}

/// Runs with the scheduler resolved by name from `reg` — the hook through
/// which custom [`SchedulerFactory`]
/// policies reach the driver.
///
/// # Panics
///
/// Panics if `config.scheduler.key()` is not registered in `reg`.
pub fn run_registered(workload: &Workload, config: &SimConfig, reg: &SchedulerRegistry) -> Report {
    let key = config.scheduler.key();
    let factory = reg
        .get(key)
        .unwrap_or_else(|| panic!("scheduler {key:?} is not registered"));
    run_factory(factory, workload, config, &mut SimScratch::new())
}

/// Runs one simulation through `factory`, preferring its monomorphized
/// typed loop ([`SchedulerFactory::run_typed`]) and falling back to the
/// `dyn Scheduler` loop for factories that don't provide one. `scratch` is
/// reused across calls — this is the campaign executor's per-cell entry
/// point.
pub fn run_factory(
    factory: &dyn SchedulerFactory,
    workload: &Workload,
    config: &SimConfig,
    scratch: &mut SimScratch,
) -> Report {
    match factory.run_typed(workload, config, scratch) {
        Some(report) => report,
        None => {
            let mut scheduler = factory.create(config);
            run_dispatch(workload, config, scheduler.as_mut(), true, true, scratch)
        }
    }
}

/// Runs with a concrete scheduler type: the whole event loop is
/// monomorphized for `S`, so the per-event scheduler interactions are
/// static calls LLVM can inline — this is the loop the built-in factories
/// route [`run`] and campaign cells through. Results are bit-identical to
/// [`run_with`] on the same scheduler (pinned by
/// `typed_loop_matches_generic`).
pub fn run_typed<S: Scheduler>(
    workload: &Workload,
    config: &SimConfig,
    scheduler: &mut S,
) -> Report {
    run_typed_scratch(workload, config, scheduler, &mut SimScratch::new())
}

/// [`run_typed`] reusing caller-owned [`SimScratch`] buffers.
pub fn run_typed_scratch<S: Scheduler>(
    workload: &Workload,
    config: &SimConfig,
    scheduler: &mut S,
    scratch: &mut SimScratch,
) -> Report {
    run_dispatch(workload, config, scheduler, true, true, scratch)
}

/// Runs with a caller-provided scheduler (ablations, custom policies).
///
/// This is the `dyn Scheduler` instantiation of the loop: it still takes
/// the passive fast path when the scheduler (after `init`) declares
/// [`Scheduler::is_passive`] and the fused fetch path when it declares
/// [`Scheduler::uses_victim_monitor`], but per-event scheduler calls go
/// through the vtable. All instantiations are bit-identical in results;
/// concrete types get the statically dispatched loop via [`run_typed`].
///
/// # Panics
///
/// Panics if `config` violates a [`SimConfig::validate`] invariant —
/// configurations assembled field-by-field (bypassing the builder) are
/// re-checked here, the chokepoint every run funnels through, so e.g. a
/// core count beyond the `u16` `CoreId` space fails loudly instead of
/// silently aliasing cores.
pub fn run_with(workload: &Workload, config: &SimConfig, scheduler: &mut dyn Scheduler) -> Report {
    run_dispatch(
        workload,
        config,
        scheduler,
        true,
        true,
        &mut SimScratch::new(),
    )
}

/// Like [`run_with`] but always takes the generic loop — per-event virtual
/// dispatch for passive schedulers, and the *unfused* fetch path (separate
/// victim peek and demand probe) for active ones. Exists so differential
/// tests and the same-run driver benchmark can compare the optimized paths
/// against it on identical inputs; results are bit-identical with
/// [`run_with`] and [`run_typed`].
pub fn run_with_generic_loop(
    workload: &Workload,
    config: &SimConfig,
    scheduler: &mut dyn Scheduler,
) -> Report {
    run_dispatch(
        workload,
        config,
        scheduler,
        false,
        false,
        &mut SimScratch::new(),
    )
}

fn run_dispatch<S: Scheduler + ?Sized>(
    workload: &Workload,
    config: &SimConfig,
    scheduler: &mut S,
    allow_passive: bool,
    fused: bool,
    scratch: &mut SimScratch,
) -> Report {
    if let Err(e) = config.validate() {
        panic!("invalid SimConfig: {e}");
    }
    let traces = workload.txns();
    let n_cores = config.system.n_cores;
    scratch.threads.clear();
    scratch.threads.extend(
        traces
            .iter()
            .enumerate()
            .map(|(i, t)| TxnThread::new(ThreadId::new(i as u32), i, t.txn_type(), 0)),
    );
    scheduler.init(&scratch.threads, traces, n_cores);
    // `is_passive`/`uses_victim_monitor` are meaningful only after `init`
    // (the hybrid picks its delegate there), so the dispatch happens here,
    // not at the call site. The passive loop never consults `pre_fetch`,
    // so FUSED is moot there; and fusing for a scheduler that never peeks
    // victims would thread probe state through the fetch for nothing, so
    // the fused loop runs exactly for the policies that monitor victims.
    match (
        allow_passive && scheduler.is_passive(),
        fused && scheduler.uses_victim_monitor(),
    ) {
        (true, _) => sim_loop::<S, true, true>(workload, config, scheduler, scratch),
        (false, true) => sim_loop::<S, false, true>(workload, config, scheduler, scratch),
        (false, false) => sim_loop::<S, false, false>(workload, config, scheduler, scratch),
    }
}

/// The simulation loop, monomorphized over the scheduler type and the two
/// fast-path switches. With `PASSIVE = true` the per-event scheduler
/// interactions are compile-time constants (`pre_fetch`/`on_fetch` →
/// [`Decision::Continue`], `phase_tag` → 0) and every `Decision` branch
/// folds away. With `FUSED = true` (active schedulers) the victim peek and
/// the demand fetch share one L1-I tag scan.
fn sim_loop<S: Scheduler + ?Sized, const PASSIVE: bool, const FUSED: bool>(
    workload: &Workload,
    config: &SimConfig,
    scheduler: &mut S,
    scratch: &mut SimScratch,
) -> Report {
    let traces = workload.txns();
    let n_cores = config.system.n_cores;
    let mut mem = MemorySystem::new(config.system);

    let SimScratch {
        threads,
        cores,
        heap,
    } = scratch;
    cores.clear();
    cores.resize(n_cores, Core::default());
    let n_threads = threads.len();
    let mut completed = 0usize;
    // Min-heap of (next cycle, core index).
    heap.clear();
    heap.extend((0..n_cores).map(|c| Reverse((0, c))));

    while completed < n_threads {
        let Reverse((now, c)) = heap.pop().expect("cores outlive pending work");
        let core_id = CoreId::new(c as u16);
        cores[c].cycle = cores[c].cycle.max(now);

        if cores[c].current.is_none() {
            match scheduler.next_thread(core_id, cores[c].cycle) {
                Some(tid) => {
                    cores[c].current = Some(tid);
                    // Restore the incoming context from the L2.
                    cores[c].cycle += mem.context_transfer(core_id, config.strex.ctx_state_blocks);
                    scheduler.on_sched_in(core_id, tid);
                }
                None => {
                    // No runnable work: poll again later if work may appear.
                    if scheduler.has_pending_work() || completed < n_threads {
                        heap.push(Reverse((cores[c].cycle + IDLE_POLL, c)));
                    }
                    continue;
                }
            }
        }

        let tid = cores[c].current.expect("assigned above");
        // Hoist the thread and trace borrows out of the event batch: the
        // scheduler and memory system never touch `threads`, so the inner
        // loop indexes neither `threads` nor `traces` per event. The packed
        // event stream is walked with a local index (written back to the
        // thread's cursor after the batch), so per-event bookkeeping is one
        // bounds-checked 8-byte load.
        let thread = &mut threads[tid.as_usize()];
        let refs: &[PackedRef] = traces[thread.trace_idx()].refs();
        let mut pos = thread.cursor().position();
        // Local cycle accumulator; written back to `cores[c]` after the
        // batch (and kept in sync at every scheduler callback).
        let mut cycle = cores[c].cycle;
        let mut budget = BATCH_EVENTS;
        let mut reinsert_at: Option<Cycle> = None;

        while budget > 0 {
            budget -= 1;
            // Pipeline the memory model one event ahead: start pulling in
            // the L2-slice lines the *next* instruction fetch will probe
            // while the current event is simulated. Pure prefetch hint.
            if let Some(next) = refs.get(pos + 1) {
                if next.is_fetch() {
                    mem.prefetch_fetch(BlockAddr::new(next.payload()));
                }
            }
            match refs.get(pos).map(|r| r.decode()) {
                None => {
                    thread.mark_completed(cycle);
                    completed += 1;
                    scheduler.on_done(core_id, tid, cycle);
                    cores[c].current = None;
                    reinsert_at = Some(cycle);
                    break;
                }
                Some(MemRef::IFetch { block, instrs }) => {
                    // Fused path: one read-only scan of the target L1-I set
                    // answers both the victim monitor and the demand probe.
                    let probe = if !PASSIVE && FUSED {
                        Some(mem.probe_fetch(core_id, block))
                    } else {
                        None
                    };
                    // Victim monitor: a thread stops *before* a fill that
                    // would destroy the team's current-phase segment; the
                    // abandoned fetch re-executes when it is next scheduled.
                    if !PASSIVE {
                        let decision = match &probe {
                            Some(p) => scheduler.pre_fetch_probed(core_id, tid, block, p, &mem),
                            None => scheduler.pre_fetch(core_id, tid, block, &mem),
                        };
                        if decision == Decision::Switch {
                            cycle += mem.context_transfer(core_id, config.strex.ctx_state_blocks);
                            scheduler.on_switch(core_id, tid);
                            cores[c].current = None;
                            reinsert_at = Some(cycle);
                            break;
                        }
                    }
                    let tag = if PASSIVE {
                        0
                    } else {
                        scheduler.phase_tag(core_id)
                    };
                    let fetch = match probe {
                        Some(p) => mem.fetch_inst_probed(core_id, p, tag, cycle),
                        None => mem.fetch_inst(core_id, block, tag, cycle),
                    };
                    mem.add_instructions(core_id, instrs as u64);
                    cycle += instrs as u64 + fetch.stall;
                    pos += 1;
                    if !PASSIVE {
                        match scheduler.on_fetch(core_id, tid, block, &fetch, &mem) {
                            Decision::Continue => {}
                            Decision::Switch => {
                                // Save the outgoing context to the L2.
                                cycle +=
                                    mem.context_transfer(core_id, config.strex.ctx_state_blocks);
                                scheduler.on_switch(core_id, tid);
                                cores[c].current = None;
                                reinsert_at = Some(cycle);
                                break;
                            }
                            Decision::Migrate(dst) => {
                                cycle +=
                                    mem.context_transfer(core_id, config.strex.ctx_state_blocks);
                                scheduler.on_migrate(tid, dst);
                                cores[c].current = None;
                                reinsert_at = Some(cycle);
                                // Wake the destination core if it went idle.
                                heap.push(Reverse((cycle, dst.as_usize())));
                                break;
                            }
                        }
                    }
                }
                Some(MemRef::Load { addr }) => {
                    let access = mem.access_data(core_id, addr, false, cycle);
                    cycle += access.stall;
                    pos += 1;
                }
                Some(MemRef::Store { addr }) => {
                    // Stores retire through the store buffer; the miss is
                    // tracked (and occupies the hierarchy) but does not
                    // stall the core.
                    let _ = mem.access_data(core_id, addr, true, cycle);
                    pos += 1;
                }
            }
        }
        thread.cursor_mut().set_position(pos);
        cores[c].cycle = cycle;
        if completed < n_threads {
            heap.push(Reverse((reinsert_at.unwrap_or(cycle), c)));
        }
    }

    let makespan = threads
        .iter()
        .filter_map(TxnThread::completed)
        .max()
        .unwrap_or(0);
    let latencies: Vec<Cycle> = threads.iter().filter_map(TxnThread::latency).collect();
    let mut stats = mem.stats().clone();
    stats.shared = mem.shared_stats();

    Report {
        scheduler: scheduler.name(),
        workload: workload.name().to_string(),
        n_cores,
        makespan,
        transactions: threads.len(),
        latencies,
        stats,
        context_switches: scheduler.context_switches(),
        migrations: scheduler.migrations(),
        hybrid_choice: scheduler.hybrid_choice(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerKind;
    use crate::sched::BaselineSched;
    use strex_oltp::workload::WorkloadKind;

    fn small_workload() -> Workload {
        Workload::preset_small(WorkloadKind::TpccW1, 6, 11)
    }

    fn cfg(cores: usize, kind: SchedulerKind) -> SimConfig {
        SimConfig::builder()
            .cores(cores)
            .scheduler(kind)
            .build()
            .expect("valid test configuration")
    }

    #[test]
    fn baseline_completes_all_transactions() {
        let w = small_workload();
        let r = run(&w, &cfg(2, SchedulerKind::Baseline));
        assert_eq!(r.transactions, 6);
        assert_eq!(r.latencies.len(), 6);
        assert!(r.makespan > 0);
        assert!(r.stats.instructions() > 0);
    }

    #[test]
    fn all_schedulers_complete() {
        let w = small_workload();
        for kind in SchedulerKind::ALL {
            let r = run(&w, &cfg(2, kind));
            assert_eq!(r.transactions, 6, "{kind}");
            assert_eq!(
                r.stats.instructions(),
                w.total_instructions(),
                "{kind}: every instruction must retire exactly once"
            );
        }
    }

    #[test]
    fn more_cores_do_not_slow_the_baseline() {
        let w = Workload::preset_small(WorkloadKind::TpccW1, 8, 3);
        let two = run(&w, &cfg(2, SchedulerKind::Baseline));
        let eight = run(&w, &cfg(8, SchedulerKind::Baseline));
        assert!(
            eight.makespan < two.makespan,
            "8-core {} vs 2-core {}",
            eight.makespan,
            two.makespan
        );
    }

    #[test]
    fn strex_reduces_instruction_misses_on_same_type_pool() {
        use strex_oltp::tpcc::TpccTxnKind;
        let w = Workload::tpcc_same_type(TpccTxnKind::Payment, 1, 8, 5);
        let base = run(&w, &cfg(2, SchedulerKind::Baseline));
        let strex = run(&w, &cfg(2, SchedulerKind::Strex));
        assert!(
            strex.i_mpki() < base.i_mpki(),
            "STREX {} vs base {}",
            strex.i_mpki(),
            base.i_mpki()
        );
    }

    #[test]
    fn deterministic_runs() {
        let w = small_workload();
        let cfg = cfg(2, SchedulerKind::Strex);
        let a = run(&w, &cfg);
        let b = run(&w, &cfg);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.latencies, b.latencies);
    }

    /// The monomorphized passive loop and the generic loop must produce
    /// bit-identical results for a passive scheduler.
    #[test]
    fn passive_fast_path_matches_generic() {
        for (pool, seed, cores) in [(6usize, 11u64, 2usize), (8, 3, 4)] {
            let w = Workload::preset_small(WorkloadKind::TpccW1, pool, seed);
            let cfg = cfg(cores, SchedulerKind::Baseline);
            let mut fast_sched = BaselineSched::new();
            let mut slow_sched = BaselineSched::new();
            assert!(fast_sched.is_passive());
            let fast = run_with(&w, &cfg, &mut fast_sched);
            let slow = run_with_generic_loop(&w, &cfg, &mut slow_sched);
            assert_eq!(fast.makespan, slow.makespan);
            assert_eq!(fast.latencies, slow.latencies);
            assert_eq!(
                fast.stats.aggregate().i_misses,
                slow.stats.aggregate().i_misses
            );
            assert_eq!(fast.stats.shared, slow.stats.shared);
        }
    }
}
