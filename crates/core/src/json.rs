//! Dependency-free JSON emission for reports and campaign results.
//!
//! The build environment has no crates.io mirror, so instead of `serde`
//! this module provides a tiny escaping writer; `Report::to_json` and
//! `CampaignResult::to_json` are built on it. Emission is deterministic:
//! fixed key order, no whitespace variation — two equal results serialize
//! to byte-identical strings, which the campaign determinism tests rely
//! on.

use std::fmt::Write as _;

/// Incremental writer for one JSON value.
///
/// The caller is responsible for overall well-formedness (matching
/// `begin_*`/`end_*` calls); the writer handles separators, escaping, and
/// non-finite floats (emitted as `null`, since JSON has no NaN).
///
/// # Examples
///
/// ```
/// use strex::json::JsonWriter;
///
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.key("name");
/// w.string("TPC-C");
/// w.key("cores");
/// w.number(4);
/// w.end_object();
/// assert_eq!(w.finish(), r#"{"name":"TPC-C","cores":4}"#);
/// ```
#[derive(Clone, Debug, Default)]
pub struct JsonWriter {
    out: String,
    // Whether the next value/key at the current nesting level needs a
    // leading comma.
    need_comma: Vec<bool>,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    /// Consumes the writer, returning the JSON text.
    pub fn finish(self) -> String {
        self.out
    }

    fn pre_value(&mut self) {
        if let Some(need) = self.need_comma.last_mut() {
            if *need {
                self.out.push(',');
            }
            *need = true;
        }
    }

    /// Starts an object value.
    pub fn begin_object(&mut self) {
        self.pre_value();
        self.out.push('{');
        self.need_comma.push(false);
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        self.need_comma.pop();
        self.out.push('}');
    }

    /// Starts an array value.
    pub fn begin_array(&mut self) {
        self.pre_value();
        self.out.push('[');
        self.need_comma.push(false);
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        self.need_comma.pop();
        self.out.push(']');
    }

    /// Writes an object key (must be followed by exactly one value).
    pub fn key(&mut self, key: &str) {
        if let Some(need) = self.need_comma.last_mut() {
            if *need {
                self.out.push(',');
            }
            // The upcoming value's own pre_value must not add a comma (it
            // will re-arm the flag for the key after it).
            *need = false;
        }
        escape_into(&mut self.out, key);
        self.out.push(':');
    }

    /// Writes a string value.
    pub fn string(&mut self, s: &str) {
        self.pre_value();
        escape_into(&mut self.out, s);
    }

    /// Writes an integer value.
    pub fn number(&mut self, n: impl Into<i128>) {
        self.pre_value();
        let _ = write!(self.out, "{}", n.into());
    }

    /// Writes an unsigned value (u64/usize don't fit `Into<i128>` via one
    /// blanket, so they get their own entry point).
    pub fn number_u64(&mut self, n: u64) {
        self.pre_value();
        let _ = write!(self.out, "{n}");
    }

    /// Writes a float value (`null` if not finite — JSON has no NaN/Inf).
    pub fn float(&mut self, f: f64) {
        self.pre_value();
        if f.is_finite() {
            let _ = write!(self.out, "{f}");
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes a boolean value.
    pub fn boolean(&mut self, b: bool) {
        self.pre_value();
        self.out.push_str(if b { "true" } else { "false" });
    }

    /// Writes a null value.
    pub fn null(&mut self) {
        self.pre_value();
        self.out.push_str("null");
    }

    /// Writes an optional string (`null` when absent).
    pub fn opt_string(&mut self, s: Option<&str>) {
        match s {
            Some(s) => self.string(s),
            None => self.null(),
        }
    }

    /// Splices a pre-serialized JSON value in as the next value. The
    /// caller guarantees `json` is one complete, well-formed JSON value;
    /// the writer only handles the surrounding separators. This is how
    /// the dispatch protocol embeds an already-serialized
    /// [`CampaignShard`](crate::campaign::CampaignShard) or
    /// [`CampaignResult`](crate::campaign::CampaignResult) payload into a
    /// frame without re-walking it.
    pub fn raw(&mut self, json: &str) {
        self.pre_value();
        self.out.push_str(json);
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_arrays_and_separators() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.begin_array();
        w.number(1);
        w.number(2);
        w.number(3);
        w.end_array();
        w.key("b");
        w.begin_object();
        w.key("c");
        w.string("x");
        w.end_object();
        w.key("d");
        w.null();
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":[1,2,3],"b":{"c":"x"},"d":null}"#);
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        let mut w = JsonWriter::new();
        w.string("a\"b\\c\nd\u{1}");
        assert_eq!(w.finish(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.float(1.5);
        w.float(f64::NAN);
        w.float(f64::INFINITY);
        w.end_array();
        assert_eq!(w.finish(), "[1.5,null,null]");
    }

    #[test]
    fn raw_values_get_separators_but_no_escaping() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.raw(r#"{"n":1}"#);
        w.key("b");
        w.raw("[1,2]");
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":{"n":1},"b":[1,2]}"#);

        let mut w = JsonWriter::new();
        w.begin_array();
        w.raw("1");
        w.raw("2");
        w.end_array();
        assert_eq!(w.finish(), "[1,2]");
    }

    #[test]
    fn top_level_scalars_have_no_commas() {
        let mut w = JsonWriter::new();
        w.boolean(true);
        assert_eq!(w.finish(), "true");
    }
}
