//! Simulation results: the metrics the paper's figures report.

use strex_sim::ids::Cycle;
use strex_sim::stats::{CoreStats, SharedStats, SystemStats};

use crate::json::JsonWriter;
use crate::jsonval::{JsonValue, WireError};

/// Outcome of one simulation run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Scheduler name used.
    pub scheduler: &'static str,
    /// Workload name.
    pub workload: String,
    /// Cores simulated.
    pub n_cores: usize,
    /// Cycles to execute the whole pool (makespan).
    pub makespan: Cycle,
    /// Transactions completed.
    pub transactions: usize,
    /// Per-transaction latencies (queue entry to completion), in cycles.
    pub latencies: Vec<Cycle>,
    /// Memory-hierarchy statistics at completion.
    pub stats: SystemStats,
    /// Context switches (STREX) performed.
    pub context_switches: u64,
    /// Migrations (SLICC) performed.
    pub migrations: u64,
    /// Which scheduler a hybrid selected ("STREX"/"SLICC"), if applicable.
    pub hybrid_choice: Option<&'static str>,
}

impl Report {
    /// Throughput as defined in Section 5.1: the inverse of the cycles
    /// required to execute all transactions.
    pub fn throughput(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            1.0 / self.makespan as f64
        }
    }

    /// Cycle by which `frac` of the transactions had completed.
    ///
    /// The paper measures a 1.2 B-instruction window of a *continuously
    /// supplied* system; a finite pool instead has a cool-down tail during
    /// which cores idle (batch schedulers idle more, since their last unit
    /// of work is a whole team). Steady-state throughput comparisons use
    /// the 90th-percentile completion time to exclude that artifact.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is outside `(0, 1]`.
    pub fn completion_time(&self, frac: f64) -> Cycle {
        assert!(frac > 0.0 && frac <= 1.0, "fraction out of range");
        if self.latencies.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() as f64 * frac).ceil() as usize).clamp(1, sorted.len());
        sorted[idx - 1]
    }

    /// Steady-state throughput: completed transactions per cycle at the
    /// 90th-percentile completion point.
    pub fn steady_throughput(&self) -> f64 {
        let t = self.completion_time(0.9);
        if t == 0 {
            0.0
        } else {
            self.transactions as f64 * 0.9 / t as f64
        }
    }

    /// Throughput relative to a reference report (Figure 6 normalizes to
    /// the 2-core baseline), using steady-state throughput.
    pub fn relative_throughput(&self, reference: &Report) -> f64 {
        let r = reference.steady_throughput();
        if r == 0.0 {
            0.0
        } else {
            self.steady_throughput() / r
        }
    }

    /// System-wide instruction MPKI.
    pub fn i_mpki(&self) -> f64 {
        self.stats.i_mpki()
    }

    /// System-wide data MPKI.
    pub fn d_mpki(&self) -> f64 {
        self.stats.d_mpki()
    }

    /// Mean transaction latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.latencies.is_empty() {
            0.0
        } else {
            self.latencies.iter().sum::<u64>() as f64 / self.latencies.len() as f64
        }
    }

    /// Serializes the full report — identity, headline metrics, raw
    /// latencies, and every hierarchy counter — as one JSON object.
    ///
    /// Emission is deterministic (fixed key order, `{}` float formatting),
    /// so two reports from identical runs serialize byte-identically;
    /// the campaign determinism tests compare exactly this.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    pub(crate) fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("scheduler");
        w.string(self.scheduler);
        w.key("workload");
        w.string(&self.workload);
        w.key("n_cores");
        w.number_u64(self.n_cores as u64);
        w.key("makespan");
        w.number_u64(self.makespan);
        w.key("transactions");
        w.number_u64(self.transactions as u64);
        w.key("context_switches");
        w.number_u64(self.context_switches);
        w.key("migrations");
        w.number_u64(self.migrations);
        w.key("hybrid_choice");
        w.opt_string(self.hybrid_choice);
        w.key("metrics");
        w.begin_object();
        w.key("i_mpki");
        w.float(self.i_mpki());
        w.key("d_mpki");
        w.float(self.d_mpki());
        w.key("steady_throughput");
        w.float(self.steady_throughput());
        w.key("mean_latency");
        w.float(self.mean_latency());
        w.end_object();
        w.key("latencies");
        w.begin_array();
        for &l in &self.latencies {
            w.number_u64(l);
        }
        w.end_array();
        w.key("stats");
        w.begin_object();
        w.key("aggregate");
        write_core_stats(w, &self.stats.aggregate());
        w.key("shared");
        write_shared_stats(w, &self.stats.shared);
        w.key("cores");
        w.begin_array();
        for c in &self.stats.cores {
            write_core_stats(w, c);
        }
        w.end_array();
        w.end_object();
        w.end_object();
    }

    /// Parses a report back from its [`to_json`](Report::to_json) form —
    /// the wire format `repro dist` shard children ship their results in.
    ///
    /// Only the raw measurement fields are read; the derived `metrics`
    /// and `stats.aggregate` sections are ignored and recomputed on
    /// demand, so a parsed report re-serializes byte-identically to its
    /// source (round-trip-tested in `tests/json_wire.rs`).
    pub fn from_json(text: &str) -> Result<Report, WireError> {
        Self::from_json_value(&JsonValue::parse(text)?)
    }

    /// [`from_json`](Report::from_json) over an already-parsed value
    /// (e.g. one cell of a campaign document).
    pub fn from_json_value(v: &JsonValue) -> Result<Report, WireError> {
        let latencies = v
            .req_array("latencies")?
            .iter()
            .map(|l| {
                l.as_u64()
                    .ok_or_else(|| WireError::new("`latencies` entry is not an unsigned integer"))
            })
            .collect::<Result<Vec<Cycle>, _>>()?;
        let cores = v
            .req_array("stats.cores")?
            .iter()
            .map(core_stats_from_json)
            .collect::<Result<Vec<CoreStats>, _>>()?;
        let shared = SharedStats {
            l2_accesses: v.req_u64("stats.shared.l2_accesses")?,
            l2_misses: v.req_u64("stats.shared.l2_misses")?,
            writebacks: v.req_u64("stats.shared.writebacks")?,
        };
        let hybrid_choice = match v.req("hybrid_choice")? {
            JsonValue::Null => None,
            JsonValue::String(s) => Some(intern_scheduler_name(s)?),
            _ => return Err(WireError::new("`hybrid_choice` is not a string or null")),
        };
        Ok(Report {
            scheduler: intern_scheduler_name(v.req_str("scheduler")?)?,
            workload: v.req_str("workload")?.to_string(),
            n_cores: v.req_u64("n_cores")? as usize,
            makespan: v.req_u64("makespan")?,
            transactions: v.req_u64("transactions")? as usize,
            latencies,
            stats: SystemStats { cores, shared },
            context_switches: v.req_u64("context_switches")?,
            migrations: v.req_u64("migrations")?,
            hybrid_choice,
        })
    }

    /// Latency histogram over fixed-width bins of `bin_cycles`, returning
    /// `(bin upper edge, fraction)` pairs — Figure 7's distribution.
    pub fn latency_histogram(&self, bin_cycles: u64, n_bins: usize) -> Vec<(u64, f64)> {
        let mut counts = vec![0usize; n_bins + 1];
        for &l in &self.latencies {
            let bin = ((l / bin_cycles.max(1)) as usize).min(n_bins);
            counts[bin] += 1;
        }
        let total = self.latencies.len().max(1) as f64;
        counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| ((i as u64 + 1) * bin_cycles, c as f64 / total))
            .collect()
    }
}

fn write_core_stats(w: &mut JsonWriter, s: &CoreStats) {
    w.begin_object();
    w.key("instructions");
    w.number_u64(s.instructions);
    w.key("i_accesses");
    w.number_u64(s.i_accesses);
    w.key("i_misses");
    w.number_u64(s.i_misses);
    w.key("i_misses_hidden");
    w.number_u64(s.i_misses_hidden);
    w.key("prefetches");
    w.number_u64(s.prefetches);
    w.key("useful_prefetches");
    w.number_u64(s.useful_prefetches);
    w.key("d_accesses");
    w.number_u64(s.d_accesses);
    w.key("d_misses");
    w.number_u64(s.d_misses);
    w.key("d_coherence_misses");
    w.number_u64(s.d_coherence_misses);
    w.key("upgrade_invalidations");
    w.number_u64(s.upgrade_invalidations);
    w.key("i_stall_cycles");
    w.number_u64(s.i_stall_cycles);
    w.key("d_stall_cycles");
    w.number_u64(s.d_stall_cycles);
    w.end_object();
}

fn write_shared_stats(w: &mut JsonWriter, s: &SharedStats) {
    w.begin_object();
    w.key("l2_accesses");
    w.number_u64(s.l2_accesses);
    w.key("l2_misses");
    w.number_u64(s.l2_misses);
    w.key("writebacks");
    w.number_u64(s.writebacks);
    w.end_object();
}

fn core_stats_from_json(v: &JsonValue) -> Result<CoreStats, WireError> {
    Ok(CoreStats {
        instructions: v.req_u64("instructions")?,
        i_accesses: v.req_u64("i_accesses")?,
        i_misses: v.req_u64("i_misses")?,
        i_misses_hidden: v.req_u64("i_misses_hidden")?,
        prefetches: v.req_u64("prefetches")?,
        useful_prefetches: v.req_u64("useful_prefetches")?,
        d_accesses: v.req_u64("d_accesses")?,
        d_misses: v.req_u64("d_misses")?,
        d_coherence_misses: v.req_u64("d_coherence_misses")?,
        upgrade_invalidations: v.req_u64("upgrade_invalidations")?,
        i_stall_cycles: v.req_u64("i_stall_cycles")?,
        d_stall_cycles: v.req_u64("d_stall_cycles")?,
    })
}

/// Maps a parsed scheduler name onto the `&'static str` the [`Report`]
/// carries. The built-in policy names come from a fixed table; an unknown
/// name (a custom registry policy crossing the wire) is leaked once and
/// memoized, so long-running parsers stay bounded by the number of
/// *distinct* custom policy names they ever see — mirroring how factories
/// hold `&'static` names locally. Because the wire is a trust boundary,
/// the memo table is capped: a document stream minting endless fresh
/// names gets a [`WireError`], not an unbounded leak.
pub(crate) fn intern_scheduler_name(name: &str) -> Result<&'static str, WireError> {
    const BUILT_IN: &[&str] = &["Base", "STREX", "SLICC", "STREX+SLICC"];
    // Far more distinct custom policies than any real registry holds;
    // only hostile or corrupt input gets anywhere near it.
    const MAX_CUSTOM: usize = 1024;
    for &s in BUILT_IN {
        if s == name {
            return Ok(s);
        }
    }
    static CUSTOM: std::sync::Mutex<Vec<&'static str>> = std::sync::Mutex::new(Vec::new());
    let mut interned = CUSTOM.lock().expect("interner poisoned");
    if let Some(&s) = interned.iter().find(|&&s| s == name) {
        return Ok(s);
    }
    if interned.len() >= MAX_CUSTOM {
        return Err(WireError::new(format!(
            "refusing to intern scheduler name {name:?}: more than {MAX_CUSTOM} distinct \
             custom names seen, which no real registry produces"
        )));
    }
    let s: &'static str = Box::leak(name.to_string().into_boxed_str());
    interned.push(s);
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(makespan: Cycle, latencies: Vec<Cycle>) -> Report {
        Report {
            scheduler: "test",
            workload: "w".to_string(),
            n_cores: 2,
            makespan,
            transactions: latencies.len(),
            latencies,
            stats: SystemStats::new(2),
            context_switches: 0,
            migrations: 0,
            hybrid_choice: None,
        }
    }

    #[test]
    fn throughput_is_inverse_makespan() {
        let r = report(1000, vec![500, 900]);
        assert!((r.throughput() - 1e-3).abs() < 1e-12);
        assert_eq!(report(0, vec![]).throughput(), 0.0);
    }

    #[test]
    fn relative_throughput_ratios() {
        // Same transaction count; the faster system's p90 completion is half.
        let base = report(2000, vec![500, 1000, 2000]);
        let faster = report(1000, vec![250, 500, 1000]);
        assert!((faster.relative_throughput(&base) - 2.0).abs() < 1e-12);
        assert!((base.relative_throughput(&base) - 1.0).abs() < 1e-12);
        // No completions -> zero throughput, no division by zero.
        let empty = report(0, vec![]);
        assert_eq!(empty.steady_throughput(), 0.0);
        assert_eq!(base.relative_throughput(&empty), 0.0);
    }

    #[test]
    fn completion_time_percentiles() {
        let r = report(100, vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(r.completion_time(0.9), 90);
        assert_eq!(r.completion_time(0.5), 50);
        assert_eq!(r.completion_time(1.0), 100);
    }

    #[test]
    #[should_panic(expected = "fraction out of range")]
    fn completion_time_validates_fraction() {
        let _ = report(1, vec![1]).completion_time(0.0);
    }

    #[test]
    fn mean_latency() {
        let r = report(100, vec![10, 20, 30]);
        assert!((r.mean_latency() - 20.0).abs() < 1e-12);
        assert_eq!(report(100, vec![]).mean_latency(), 0.0);
    }

    #[test]
    fn json_contains_identity_metrics_and_counters() {
        let r = report(1000, vec![500, 900]);
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains(r#""scheduler":"test""#));
        assert!(j.contains(r#""workload":"w""#));
        assert!(j.contains(r#""makespan":1000"#));
        assert!(j.contains(r#""latencies":[500,900]"#));
        assert!(j.contains(r#""hybrid_choice":null"#));
        assert!(j.contains(r#""l2_accesses":0"#));
        // Deterministic: same report, same bytes.
        assert_eq!(j, r.to_json());
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let mut r = report(1000, vec![500, 900]);
        r.stats.cores[0].instructions = 1234;
        r.stats.cores[1].d_misses = 56;
        r.stats.shared.l2_accesses = 78;
        r.context_switches = 9;
        r.hybrid_choice = Some("STREX");
        let json = r.to_json();
        let parsed = Report::from_json(&json).expect("own output parses");
        assert_eq!(parsed.to_json(), json, "byte-identical round trip");
        assert_eq!(parsed.hybrid_choice, Some("STREX"));
        assert_eq!(parsed.stats.cores.len(), 2);

        // Structural errors are loud, not panics.
        assert!(Report::from_json("{}").is_err());
        assert!(Report::from_json("not json").is_err());
        let truncated = json.replace(r#""makespan":1000,"#, "");
        assert!(Report::from_json(&truncated).is_err());
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let r = report(100, vec![5, 15, 15, 250]);
        let h = r.latency_histogram(10, 3);
        assert_eq!(h.len(), 4);
        assert!((h[0].1 - 0.25).abs() < 1e-12, "one in first bin");
        assert!((h[1].1 - 0.5).abs() < 1e-12, "two in second bin");
        assert!((h[3].1 - 0.25).abs() < 1e-12, "overflow bin");
        let total: f64 = h.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
