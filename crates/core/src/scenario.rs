//! Declarative scenarios: machine-checkable claims about campaign results.
//!
//! The paper's headline claims — "STREX cuts L1-I misses versus the
//! baseline scheduler", "throughput stays inside this window" — lived
//! only in prose and in the experiment code until this module. A
//! [`Scenario`] is a small JSON document that declares a scheduler ×
//! workload × cores × team-size matrix *plus* typed [`Assertion`]s over
//! the reports the matrix produces, so the reproduction's correctness
//! contract becomes an executable regression suite (`repro check
//! scenarios/`, the committed `scenarios/` directory).
//!
//! The format is parsed through the [`crate::jsonval`] trust-boundary
//! parser and validated strictly: unknown fields, missing fields,
//! mistyped values and out-of-range numbers are all typed
//! [`ScenarioError`]s — never panics, and never silently ignored keys
//! (a typo'd assertion that silently never runs would be worse than no
//! assertion at all). [`Scenario::to_json`] re-serializes through
//! [`crate::json::JsonWriter`] deterministically, and
//! `parse(serialize(parse(x)))` is the identity (property-tested in
//! `tests/scenario_roundtrip.rs`).
//!
//! Evaluation is registry-dispatched: every assertion kind has an
//! evaluator in an [`EvaluatorRegistry`] keyed by the kind tag, so
//! downstream code can override a built-in or register new kinds
//! without touching this module. Each evaluation yields an
//! [`AssertionOutcome`] carrying the expected bound, the observed value
//! and the offending cell key — the diagnostic `repro check` prints
//! whether the assertion passed or failed.
//!
//! ```no_run
//! use strex::scenario::{EvaluatorRegistry, Scenario};
//!
//! let text = std::fs::read_to_string("scenarios/strex_l1i_reduction.json")?;
//! let scenario = Scenario::from_json(&text)?;
//! let workloads = scenario.workloads();
//! let result = scenario.campaign(&workloads).run()?;
//! let registry = EvaluatorRegistry::with_defaults();
//! for outcome in scenario.evaluate(&result, &registry)? {
//!     println!("{outcome}");
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use strex_oltp::cache::WorkloadCache;
use strex_oltp::workload::{Workload, WorkloadKind};

use crate::campaign::{Campaign, CampaignResult};
use crate::config::SimConfig;
use crate::json::JsonWriter;
use crate::jsonval::{JsonError, JsonValue};
use crate::report::Report;

/// Largest transaction pool a scenario may request. Scenarios run in CI
/// on every push; a matrix bigger than this belongs in the full
/// reproduction (`repro all`), not a check file.
pub const MAX_POOL: usize = 100_000;

/// Largest core count a scenario cell may request (far below the
/// simulator's own [`crate::config::MAX_CORES`], for the same CI-budget
/// reason as [`MAX_POOL`]).
pub const MAX_SCENARIO_CORES: usize = 256;

/// Largest STREX team size a scenario may sweep. The default
/// configuration's formation window is 30; larger teams would need a
/// wider window than scenarios can express.
pub const MAX_TEAM_SIZE: usize = 30;

/// Why a scenario document was rejected or could not be evaluated.
///
/// Every variant names the dotted path of the offending field when one
/// exists, so a failing `repro check` run points at the exact line to
/// fix. Parsing never panics: hostile or corrupt input is answered with
/// one of these.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// The document is not well-formed JSON at all.
    Json(JsonError),
    /// A required field is absent.
    Missing {
        /// Dotted path of the absent field.
        path: String,
    },
    /// A field holds a value of the wrong JSON type.
    Mistyped {
        /// Dotted path of the field.
        path: String,
        /// What type the schema wanted there.
        expected: &'static str,
    },
    /// An object carries a key the schema does not define — typos must
    /// be loud, or a misspelled assertion silently never runs.
    UnknownField {
        /// Dotted path of the unknown key.
        path: String,
    },
    /// A value is the right type but outside its allowed range (empty
    /// axis, zero pool, inverted window bounds, …).
    OutOfRange {
        /// Dotted path of the field.
        path: String,
        /// What about the value is out of range.
        detail: String,
    },
    /// A name field refers to something that does not exist (unknown
    /// workload, unknown metric, unknown assertion kind).
    UnknownName {
        /// Dotted path of the field.
        path: String,
        /// The unrecognized name.
        name: String,
        /// The accepted names, for the error message.
        known: String,
    },
    /// [`EvaluatorRegistry::evaluate`] found no evaluator registered for
    /// an assertion's kind tag.
    NoEvaluator {
        /// The kind tag that had no evaluator.
        kind: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Json(e) => write!(f, "scenario: {e}"),
            ScenarioError::Missing { path } => write!(f, "scenario: missing `{path}`"),
            ScenarioError::Mistyped { path, expected } => {
                write!(f, "scenario: `{path}` is not {expected}")
            }
            ScenarioError::UnknownField { path } => {
                write!(f, "scenario: unknown field `{path}`")
            }
            ScenarioError::OutOfRange { path, detail } => {
                write!(f, "scenario: `{path}` out of range: {detail}")
            }
            ScenarioError::UnknownName { path, name, known } => {
                write!(
                    f,
                    "scenario: `{path}` names unknown {name:?} (known: {known})"
                )
            }
            ScenarioError::NoEvaluator { kind } => {
                write!(
                    f,
                    "scenario: no evaluator registered for assertion kind {kind:?}"
                )
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<JsonError> for ScenarioError {
    fn from(e: JsonError) -> Self {
        ScenarioError::Json(e)
    }
}

/// A per-report metric an assertion can bound or compare.
///
/// The keys are the snake_case strings the JSON format uses; values are
/// computed from a [`Report`] by [`Metric::of`].
#[derive(Copy, Clone, Debug, Eq, PartialEq)]
#[non_exhaustive]
pub enum Metric {
    /// System-wide instruction MPKI ([`Report::i_mpki`]).
    IMpki,
    /// System-wide data MPKI ([`Report::d_mpki`]).
    DMpki,
    /// Steady-state throughput in transactions per cycle
    /// ([`Report::steady_throughput`]).
    SteadyThroughput,
    /// Mean transaction latency in cycles ([`Report::mean_latency`]).
    MeanLatency,
    /// Total cycles to drain the pool ([`Report::makespan`]).
    Makespan,
    /// STREX context switches performed.
    ContextSwitches,
    /// SLICC migrations performed.
    Migrations,
}

impl Metric {
    /// Every metric, in the order the documentation lists them.
    pub const ALL: [Metric; 7] = [
        Metric::IMpki,
        Metric::DMpki,
        Metric::SteadyThroughput,
        Metric::MeanLatency,
        Metric::Makespan,
        Metric::ContextSwitches,
        Metric::Migrations,
    ];

    /// The snake_case key the JSON format spells this metric as.
    pub fn key(self) -> &'static str {
        match self {
            Metric::IMpki => "i_mpki",
            Metric::DMpki => "d_mpki",
            Metric::SteadyThroughput => "steady_throughput",
            Metric::MeanLatency => "mean_latency",
            Metric::Makespan => "makespan",
            Metric::ContextSwitches => "context_switches",
            Metric::Migrations => "migrations",
        }
    }

    /// Parses a metric key; `None` for unknown keys.
    pub fn from_key(key: &str) -> Option<Metric> {
        Metric::ALL.into_iter().find(|m| m.key() == key)
    }

    /// Computes this metric from a report.
    pub fn of(self, r: &Report) -> f64 {
        match self {
            Metric::IMpki => r.i_mpki(),
            Metric::DMpki => r.d_mpki(),
            Metric::SteadyThroughput => r.steady_throughput(),
            Metric::MeanLatency => r.mean_latency(),
            Metric::Makespan => r.makespan as f64,
            Metric::ContextSwitches => r.context_switches as f64,
            Metric::Migrations => r.migrations as f64,
        }
    }

    fn known() -> String {
        Metric::ALL
            .iter()
            .map(|m| m.key())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Addresses one cell of the scenario's matrix by its coordinates.
///
/// `workload` is the canonical workload name (`"TPC-C-1"`…), `scheduler`
/// the registry key (`"baseline"`, `"strex"`, …). `team_size` is
/// optional: omitted, the selector requires the matrix to have exactly
/// one team size for those coordinates — an ambiguous selector is a
/// failed assertion, not a silent first match.
#[derive(Clone, Debug, PartialEq)]
pub struct CellSelector {
    /// Workload name, as in [`crate::campaign::CellKey::workload`].
    pub workload: String,
    /// Scheduler registry key, as in
    /// [`crate::campaign::CellKey::scheduler`].
    pub scheduler: String,
    /// Core count.
    pub cores: usize,
    /// STREX team size; `None` matches any (and errors on ambiguity).
    pub team_size: Option<usize>,
}

impl fmt::Display for CellSelector {
    /// `workload/scheduler/c<cores>` with `/t<team_size>` when pinned —
    /// the same shape as [`crate::campaign::CellKey`]'s display.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/c{}", self.workload, self.scheduler, self.cores)?;
        if let Some(t) = self.team_size {
            write!(f, "/t{t}")?;
        }
        Ok(())
    }
}

/// One typed claim about the matrix's reports.
///
/// The `kind` tags are the snake_case strings spelled in the JSON
/// `assertions` array; see `docs/SCENARIOS.md` for the schema of each.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Assertion {
    /// `cell`'s steady-state throughput is at least `min` transactions
    /// per cycle — the throughput-bound claim.
    ThroughputAtLeast {
        /// The cell whose throughput is bounded.
        cell: CellSelector,
        /// Inclusive lower bound, transactions per cycle.
        min: f64,
    },
    /// `metric` on `cell` lies inside `[min, max]` — the window claim
    /// (e.g. a miss-rate window on `i_mpki`).
    MetricWithin {
        /// The cell whose metric is bounded.
        cell: CellSelector,
        /// Which metric is bounded.
        metric: Metric,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// `metric` on `to` is lower than on `from` by at least
    /// `min_percent` percent — the cross-scheduler ordering claim for
    /// lower-is-better metrics ("STREX L1-I misses < baseline by ≥ X%").
    ReductionAtLeast {
        /// Which metric must drop.
        metric: Metric,
        /// The reference cell (e.g. the baseline scheduler).
        from: CellSelector,
        /// The improved cell (e.g. STREX).
        to: CellSelector,
        /// Required reduction, in percent of `from`'s value.
        min_percent: f64,
    },
    /// `metric` on `numerator` over `metric` on `denominator` is at
    /// least `min` — the cross-scheduler ordering claim for
    /// higher-is-better metrics ("STREX throughput ≥ 1.2× baseline").
    RatioAtLeast {
        /// Which metric is compared.
        metric: Metric,
        /// The cell on top of the ratio.
        numerator: CellSelector,
        /// The cell under the ratio.
        denominator: CellSelector,
        /// Inclusive lower bound on the ratio.
        min: f64,
    },
}

/// The kind tags of the built-in assertions, in documentation order.
pub const ASSERTION_KINDS: [&str; 4] = [
    "throughput_at_least",
    "metric_within",
    "reduction_at_least",
    "ratio_at_least",
];

impl Assertion {
    /// The snake_case kind tag this assertion serializes under (and the
    /// [`EvaluatorRegistry`] key it dispatches through).
    pub fn kind(&self) -> &'static str {
        match self {
            Assertion::ThroughputAtLeast { .. } => "throughput_at_least",
            Assertion::MetricWithin { .. } => "metric_within",
            Assertion::ReductionAtLeast { .. } => "reduction_at_least",
            Assertion::RatioAtLeast { .. } => "ratio_at_least",
        }
    }
}

/// The per-assertion diagnostic an evaluation produces: pass/fail plus
/// the expected bound, the observed value, and the cell key the claim
/// was judged on — everything a failing `repro check` needs to print.
#[derive(Clone, Debug, PartialEq)]
pub struct AssertionOutcome {
    /// The assertion's kind tag.
    pub kind: String,
    /// Whether the claim held.
    pub passed: bool,
    /// The cell key (or key pair) the claim was judged on.
    pub cell: String,
    /// What the assertion required, rendered for humans.
    pub expected: String,
    /// What the reports actually showed.
    pub observed: String,
}

impl fmt::Display for AssertionOutcome {
    /// `PASS`/`FAIL`, the kind, the cell, and the expected-vs-observed
    /// pair — one line per assertion.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} @ {}: expected {}, observed {}",
            if self.passed { "PASS" } else { "FAIL" },
            self.kind,
            self.cell,
            self.expected,
            self.observed,
        )
    }
}

impl AssertionOutcome {
    /// Writes the outcome as one JSON object into an open writer — the
    /// element form the dispatcher's `result` frame embeds (see
    /// `docs/PROTOCOL.md`), with a fixed key order so re-emission is
    /// byte-identical.
    pub fn write_into(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("kind");
        w.string(&self.kind);
        w.key("passed");
        w.boolean(self.passed);
        w.key("cell");
        w.string(&self.cell);
        w.key("expected");
        w.string(&self.expected);
        w.key("observed");
        w.string(&self.observed);
        w.end_object();
    }

    /// The outcome as one standalone JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_into(&mut w);
        w.finish()
    }

    /// Parses one outcome object coming off the wire. Diagnostics cross
    /// a trust boundary (a coordinator evaluated them, a submitter
    /// prints them), so the failure mode is a typed
    /// [`WireError`](crate::jsonval::WireError), not a panic.
    pub fn from_json_value(doc: &JsonValue) -> Result<AssertionOutcome, crate::jsonval::WireError> {
        Ok(AssertionOutcome {
            kind: doc.req_str("kind")?.to_string(),
            passed: doc.req_bool("passed")?,
            cell: doc.req_str("cell")?.to_string(),
            expected: doc.req_str("expected")?.to_string(),
            observed: doc.req_str("observed")?.to_string(),
        })
    }
}

/// The run matrix a scenario declares: which workloads (resolved through
/// the process-wide [`WorkloadCache`]), which schedulers, and the core /
/// team-size axes, all over one deterministic `(pool, seed)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    /// Canonical workload names (`"TPC-C-1"`, `"TPC-C-10"`, `"TPC-E"`,
    /// `"MapReduce"`).
    pub workloads: Vec<String>,
    /// Transaction-pool size per workload.
    pub pool: usize,
    /// Workload generation seed.
    pub seed: u64,
    /// `true` (the default) generates scaled-down databases via
    /// [`Workload::preset_small`] — the quick, CI-sized form; `false`
    /// uses the full-scale [`Workload::preset`] generators.
    pub small: bool,
    /// Scheduler registry keys (`"baseline"`, `"strex"`, `"slicc"`,
    /// `"hybrid"`, or custom registered names).
    pub schedulers: Vec<String>,
    /// Core counts to sweep.
    pub cores: Vec<usize>,
    /// STREX team sizes to sweep; `None` keeps the base configuration's
    /// single default team size.
    pub team_sizes: Option<Vec<usize>>,
}

/// A parsed, validated scenario: a name, an optional description, the
/// run [`Matrix`], and the [`Assertion`]s to judge its results by.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Short identifier, printed in `repro check` output.
    pub name: String,
    /// Optional prose: which paper claim this scenario encodes.
    pub description: Option<String>,
    /// The matrix to run.
    pub matrix: Matrix,
    /// The claims to evaluate over the matrix's results.
    pub assertions: Vec<Assertion>,
}

/// Maps a canonical workload name to its generator kind.
fn workload_kind(name: &str) -> Option<WorkloadKind> {
    WorkloadKind::ALL.into_iter().find(|k| k.name() == name)
}

fn known_workloads() -> String {
    WorkloadKind::ALL
        .iter()
        .map(|k| k.name())
        .collect::<Vec<_>>()
        .join(", ")
}

// ---------------------------------------------------------------------
// Parsing: strict field-by-field decoding with dotted-path errors.
// ---------------------------------------------------------------------

fn as_object<'a>(
    v: &'a JsonValue,
    path: &str,
) -> Result<&'a BTreeMap<String, JsonValue>, ScenarioError> {
    v.as_object().ok_or_else(|| ScenarioError::Mistyped {
        path: path.to_string(),
        expected: "an object",
    })
}

/// Rejects any key of `map` not in `allowed` — the unknown-field check.
fn expect_keys(
    map: &BTreeMap<String, JsonValue>,
    path: &str,
    allowed: &[&str],
) -> Result<(), ScenarioError> {
    for key in map.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(ScenarioError::UnknownField {
                path: if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                },
            });
        }
    }
    Ok(())
}

fn field<'a>(
    map: &'a BTreeMap<String, JsonValue>,
    path: &str,
    key: &str,
) -> Result<&'a JsonValue, ScenarioError> {
    map.get(key).ok_or_else(|| ScenarioError::Missing {
        path: join(path, key),
    })
}

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

fn str_field(
    map: &BTreeMap<String, JsonValue>,
    path: &str,
    key: &str,
) -> Result<String, ScenarioError> {
    field(map, path, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| ScenarioError::Mistyped {
            path: join(path, key),
            expected: "a string",
        })
}

fn u64_field(
    map: &BTreeMap<String, JsonValue>,
    path: &str,
    key: &str,
) -> Result<u64, ScenarioError> {
    field(map, path, key)?
        .as_u64()
        .ok_or_else(|| ScenarioError::Mistyped {
            path: join(path, key),
            expected: "an unsigned integer",
        })
}

fn f64_field(
    map: &BTreeMap<String, JsonValue>,
    path: &str,
    key: &str,
) -> Result<f64, ScenarioError> {
    field(map, path, key)?
        .as_f64()
        .ok_or_else(|| ScenarioError::Mistyped {
            path: join(path, key),
            expected: "a number",
        })
}

fn metric_field(
    map: &BTreeMap<String, JsonValue>,
    path: &str,
    key: &str,
) -> Result<Metric, ScenarioError> {
    let name = str_field(map, path, key)?;
    Metric::from_key(&name).ok_or_else(|| ScenarioError::UnknownName {
        path: join(path, key),
        name,
        known: Metric::known(),
    })
}

/// A non-empty array field, with per-element decoding via `decode`.
fn vec_field<T>(
    map: &BTreeMap<String, JsonValue>,
    path: &str,
    key: &str,
    decode: impl Fn(&JsonValue, &str) -> Result<T, ScenarioError>,
) -> Result<Vec<T>, ScenarioError> {
    let full = join(path, key);
    let items = field(map, path, key)?
        .as_array()
        .ok_or_else(|| ScenarioError::Mistyped {
            path: full.clone(),
            expected: "an array",
        })?;
    if items.is_empty() {
        return Err(ScenarioError::OutOfRange {
            path: full,
            detail: "must not be empty".to_string(),
        });
    }
    items
        .iter()
        .enumerate()
        .map(|(i, v)| decode(v, &format!("{full}[{i}]")))
        .collect()
}

fn bounded_usize(
    v: &JsonValue,
    path: &str,
    min: usize,
    max: usize,
    what: &str,
) -> Result<usize, ScenarioError> {
    let n = v.as_u64().ok_or_else(|| ScenarioError::Mistyped {
        path: path.to_string(),
        expected: "an unsigned integer",
    })? as usize;
    if n < min || n > max {
        return Err(ScenarioError::OutOfRange {
            path: path.to_string(),
            detail: format!("{what} must be in {min}..={max}, got {n}"),
        });
    }
    Ok(n)
}

fn finite(value: f64, path: &str) -> Result<f64, ScenarioError> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(ScenarioError::OutOfRange {
            path: path.to_string(),
            detail: "must be finite".to_string(),
        })
    }
}

impl CellSelector {
    /// Decodes a selector object (`{"workload": …, "scheduler": …,
    /// "cores": …[, "team_size": …]}`) at `path`.
    fn from_json_value(v: &JsonValue, path: &str) -> Result<CellSelector, ScenarioError> {
        let map = as_object(v, path)?;
        expect_keys(map, path, &["workload", "scheduler", "cores", "team_size"])?;
        let workload = str_field(map, path, "workload")?;
        if workload_kind(&workload).is_none() {
            return Err(ScenarioError::UnknownName {
                path: join(path, "workload"),
                name: workload,
                known: known_workloads(),
            });
        }
        let scheduler = str_field(map, path, "scheduler")?;
        if scheduler.is_empty() {
            return Err(ScenarioError::OutOfRange {
                path: join(path, "scheduler"),
                detail: "must not be empty".to_string(),
            });
        }
        let cores = bounded_usize(
            field(map, path, "cores")?,
            &join(path, "cores"),
            1,
            MAX_SCENARIO_CORES,
            "core count",
        )?;
        let team_size = match map.get("team_size") {
            Some(v) => Some(bounded_usize(
                v,
                &join(path, "team_size"),
                1,
                MAX_TEAM_SIZE,
                "team size",
            )?),
            None => None,
        };
        Ok(CellSelector {
            workload,
            scheduler,
            cores,
            team_size,
        })
    }

    fn write_into(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("workload");
        w.string(&self.workload);
        w.key("scheduler");
        w.string(&self.scheduler);
        w.key("cores");
        w.number_u64(self.cores as u64);
        if let Some(t) = self.team_size {
            w.key("team_size");
            w.number_u64(t as u64);
        }
        w.end_object();
    }
}

impl Assertion {
    /// Decodes one assertion object at `path`, dispatching on its
    /// `kind` tag.
    fn from_json_value(v: &JsonValue, path: &str) -> Result<Assertion, ScenarioError> {
        let map = as_object(v, path)?;
        let kind = str_field(map, path, "kind")?;
        match kind.as_str() {
            "throughput_at_least" => {
                expect_keys(map, path, &["kind", "cell", "min"])?;
                let cell =
                    CellSelector::from_json_value(field(map, path, "cell")?, &join(path, "cell"))?;
                let min = finite(f64_field(map, path, "min")?, &join(path, "min"))?;
                if min < 0.0 {
                    return Err(ScenarioError::OutOfRange {
                        path: join(path, "min"),
                        detail: "throughput bound must be non-negative".to_string(),
                    });
                }
                Ok(Assertion::ThroughputAtLeast { cell, min })
            }
            "metric_within" => {
                expect_keys(map, path, &["kind", "cell", "metric", "min", "max"])?;
                let cell =
                    CellSelector::from_json_value(field(map, path, "cell")?, &join(path, "cell"))?;
                let metric = metric_field(map, path, "metric")?;
                let min = finite(f64_field(map, path, "min")?, &join(path, "min"))?;
                let max = finite(f64_field(map, path, "max")?, &join(path, "max"))?;
                if min > max {
                    return Err(ScenarioError::OutOfRange {
                        path: join(path, "min"),
                        detail: format!("window is inverted (min {min} > max {max})"),
                    });
                }
                Ok(Assertion::MetricWithin {
                    cell,
                    metric,
                    min,
                    max,
                })
            }
            "reduction_at_least" => {
                expect_keys(map, path, &["kind", "metric", "from", "to", "min_percent"])?;
                let metric = metric_field(map, path, "metric")?;
                let from =
                    CellSelector::from_json_value(field(map, path, "from")?, &join(path, "from"))?;
                let to = CellSelector::from_json_value(field(map, path, "to")?, &join(path, "to"))?;
                let min_percent = finite(
                    f64_field(map, path, "min_percent")?,
                    &join(path, "min_percent"),
                )?;
                if !(0.0..=100.0).contains(&min_percent) {
                    return Err(ScenarioError::OutOfRange {
                        path: join(path, "min_percent"),
                        detail: format!("must be in 0..=100, got {min_percent}"),
                    });
                }
                Ok(Assertion::ReductionAtLeast {
                    metric,
                    from,
                    to,
                    min_percent,
                })
            }
            "ratio_at_least" => {
                expect_keys(
                    map,
                    path,
                    &["kind", "metric", "numerator", "denominator", "min"],
                )?;
                let metric = metric_field(map, path, "metric")?;
                let numerator = CellSelector::from_json_value(
                    field(map, path, "numerator")?,
                    &join(path, "numerator"),
                )?;
                let denominator = CellSelector::from_json_value(
                    field(map, path, "denominator")?,
                    &join(path, "denominator"),
                )?;
                let min = finite(f64_field(map, path, "min")?, &join(path, "min"))?;
                if min < 0.0 {
                    return Err(ScenarioError::OutOfRange {
                        path: join(path, "min"),
                        detail: "ratio bound must be non-negative".to_string(),
                    });
                }
                Ok(Assertion::RatioAtLeast {
                    metric,
                    numerator,
                    denominator,
                    min,
                })
            }
            _ => Err(ScenarioError::UnknownName {
                path: join(path, "kind"),
                name: kind,
                known: ASSERTION_KINDS.join(", "),
            }),
        }
    }

    fn write_into(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("kind");
        w.string(self.kind());
        match self {
            Assertion::ThroughputAtLeast { cell, min } => {
                w.key("cell");
                cell.write_into(w);
                w.key("min");
                w.float(*min);
            }
            Assertion::MetricWithin {
                cell,
                metric,
                min,
                max,
            } => {
                w.key("cell");
                cell.write_into(w);
                w.key("metric");
                w.string(metric.key());
                w.key("min");
                w.float(*min);
                w.key("max");
                w.float(*max);
            }
            Assertion::ReductionAtLeast {
                metric,
                from,
                to,
                min_percent,
            } => {
                w.key("metric");
                w.string(metric.key());
                w.key("from");
                from.write_into(w);
                w.key("to");
                to.write_into(w);
                w.key("min_percent");
                w.float(*min_percent);
            }
            Assertion::RatioAtLeast {
                metric,
                numerator,
                denominator,
                min,
            } => {
                w.key("metric");
                w.string(metric.key());
                w.key("numerator");
                numerator.write_into(w);
                w.key("denominator");
                denominator.write_into(w);
                w.key("min");
                w.float(*min);
            }
        }
        w.end_object();
    }
}

impl Matrix {
    fn from_json_value(v: &JsonValue, path: &str) -> Result<Matrix, ScenarioError> {
        let map = as_object(v, path)?;
        expect_keys(
            map,
            path,
            &[
                "workloads",
                "pool",
                "seed",
                "small",
                "schedulers",
                "cores",
                "team_sizes",
            ],
        )?;
        let workloads = vec_field(map, path, "workloads", |v, p| {
            let name = v.as_str().ok_or_else(|| ScenarioError::Mistyped {
                path: p.to_string(),
                expected: "a string",
            })?;
            if workload_kind(name).is_none() {
                return Err(ScenarioError::UnknownName {
                    path: p.to_string(),
                    name: name.to_string(),
                    known: known_workloads(),
                });
            }
            Ok(name.to_string())
        })?;
        let pool = bounded_usize(
            field(map, path, "pool")?,
            &join(path, "pool"),
            1,
            MAX_POOL,
            "pool size",
        )?;
        let seed = u64_field(map, path, "seed")?;
        let small = match map.get("small") {
            Some(v) => v.as_bool().ok_or_else(|| ScenarioError::Mistyped {
                path: join(path, "small"),
                expected: "a boolean",
            })?,
            None => true,
        };
        let schedulers = vec_field(map, path, "schedulers", |v, p| {
            let name = v.as_str().ok_or_else(|| ScenarioError::Mistyped {
                path: p.to_string(),
                expected: "a string",
            })?;
            if name.is_empty() {
                return Err(ScenarioError::OutOfRange {
                    path: p.to_string(),
                    detail: "must not be empty".to_string(),
                });
            }
            Ok(name.to_string())
        })?;
        let cores = vec_field(map, path, "cores", |v, p| {
            bounded_usize(v, p, 1, MAX_SCENARIO_CORES, "core count")
        })?;
        let team_sizes = match map.get("team_sizes") {
            Some(_) => Some(vec_field(map, path, "team_sizes", |v, p| {
                bounded_usize(v, p, 1, MAX_TEAM_SIZE, "team size")
            })?),
            None => None,
        };
        Ok(Matrix {
            workloads,
            pool,
            seed,
            small,
            schedulers,
            cores,
            team_sizes,
        })
    }

    fn write_into(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("workloads");
        w.begin_array();
        for name in &self.workloads {
            w.string(name);
        }
        w.end_array();
        w.key("pool");
        w.number_u64(self.pool as u64);
        w.key("seed");
        w.number_u64(self.seed);
        w.key("small");
        w.boolean(self.small);
        w.key("schedulers");
        w.begin_array();
        for name in &self.schedulers {
            w.string(name);
        }
        w.end_array();
        w.key("cores");
        w.begin_array();
        for &c in &self.cores {
            w.number_u64(c as u64);
        }
        w.end_array();
        if let Some(team_sizes) = &self.team_sizes {
            w.key("team_sizes");
            w.begin_array();
            for &t in team_sizes {
                w.number_u64(t as u64);
            }
            w.end_array();
        }
        w.end_object();
    }
}

impl Scenario {
    /// Parses and validates a scenario document.
    ///
    /// Strict at every level: malformed JSON, missing fields, wrong
    /// types, unknown fields and out-of-range values are all typed
    /// [`ScenarioError`]s.
    pub fn from_json(text: &str) -> Result<Scenario, ScenarioError> {
        Scenario::from_json_value(&JsonValue::parse(text)?)
    }

    /// [`Scenario::from_json`] over an already-parsed document.
    pub fn from_json_value(doc: &JsonValue) -> Result<Scenario, ScenarioError> {
        let map = as_object(doc, "")?;
        expect_keys(map, "", &["name", "description", "matrix", "assertions"])?;
        let name = str_field(map, "", "name")?;
        if name.is_empty() {
            return Err(ScenarioError::OutOfRange {
                path: "name".to_string(),
                detail: "must not be empty".to_string(),
            });
        }
        let description = match map.get("description") {
            Some(v) => {
                Some(
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| ScenarioError::Mistyped {
                            path: "description".to_string(),
                            expected: "a string",
                        })?,
                )
            }
            None => None,
        };
        let matrix = Matrix::from_json_value(field(map, "", "matrix")?, "matrix")?;
        let assertions = vec_field(map, "", "assertions", Assertion::from_json_value)?;
        Ok(Scenario {
            name,
            description,
            matrix,
            assertions,
        })
    }

    /// Serializes the scenario deterministically (fixed key order);
    /// `parse(to_json(s)) == s` for every valid scenario.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("name");
        w.string(&self.name);
        if let Some(d) = &self.description {
            w.key("description");
            w.string(d);
        }
        w.key("matrix");
        self.matrix.write_into(&mut w);
        w.key("assertions");
        w.begin_array();
        for a in &self.assertions {
            a.write_into(&mut w);
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Generates (or fetches from the process-wide [`WorkloadCache`])
    /// the matrix's workloads, in axis order.
    pub fn workloads(&self) -> Vec<Arc<Workload>> {
        self.matrix
            .workloads
            .iter()
            .map(|name| {
                let kind = workload_kind(name).expect("validated at parse time");
                if self.matrix.small {
                    WorkloadCache::preset_small(kind, self.matrix.pool, self.matrix.seed)
                } else {
                    WorkloadCache::preset(kind, self.matrix.pool, self.matrix.seed)
                }
            })
            .collect()
    }

    /// The declared matrix as a [`Campaign`] over `workloads` (the
    /// vector [`Scenario::workloads`] returns). Run it with
    /// [`Campaign::run`], shard it with
    /// [`Campaign::run_shard`](crate::campaign::Campaign::run_shard) —
    /// the same machinery every other campaign uses, so scenario results
    /// are bit-identical however they are executed.
    pub fn campaign<'w>(&self, workloads: &'w [Arc<Workload>]) -> Campaign<'w> {
        let base = SimConfig::builder()
            .build()
            .expect("the default configuration is valid");
        let mut campaign = Campaign::new(base)
            .over_scheduler_names(self.matrix.schedulers.iter().map(String::as_str))
            .over_workloads(workloads.iter().map(|w| &**w))
            .over_cores(self.matrix.cores.iter().copied());
        if let Some(team_sizes) = &self.matrix.team_sizes {
            campaign = campaign.over_team_sizes(team_sizes.iter().copied());
        }
        campaign
    }

    /// Evaluates every assertion against `result` through `registry`,
    /// returning one [`AssertionOutcome`] per assertion in declaration
    /// order. `Err` only for assertions whose kind has no registered
    /// evaluator; an assertion that *fails* is a `passed: false`
    /// outcome, not an error.
    pub fn evaluate(
        &self,
        result: &CampaignResult,
        registry: &EvaluatorRegistry,
    ) -> Result<Vec<AssertionOutcome>, ScenarioError> {
        self.assertions
            .iter()
            .map(|a| registry.evaluate(a, result))
            .collect()
    }
}

// ---------------------------------------------------------------------
// Evaluation: registry-dispatched per assertion kind.
// ---------------------------------------------------------------------

/// An assertion evaluator: judges one [`Assertion`] against a campaign
/// result and renders the outcome diagnostic.
pub type Evaluator = Box<dyn Fn(&Assertion, &CampaignResult) -> AssertionOutcome + Send + Sync>;

/// Dispatches assertions to evaluators by kind tag.
///
/// [`EvaluatorRegistry::with_defaults`] installs the four built-in
/// kinds; [`EvaluatorRegistry::register`] overrides one or adds a new
/// kind (paired with a custom `Assertion` producer upstream). The
/// registry exists so the set of claim kinds is extensible the same way
/// the scheduler registry makes policies extensible — dispatch by name,
/// never a hard-coded match at the call site.
#[derive(Default)]
pub struct EvaluatorRegistry {
    evaluators: BTreeMap<String, Evaluator>,
}

impl EvaluatorRegistry {
    /// An empty registry (no kinds; every evaluation errors).
    pub fn new() -> EvaluatorRegistry {
        EvaluatorRegistry::default()
    }

    /// A registry with every built-in assertion kind installed.
    pub fn with_defaults() -> EvaluatorRegistry {
        let mut reg = EvaluatorRegistry::new();
        reg.register("throughput_at_least", Box::new(eval_throughput_at_least));
        reg.register("metric_within", Box::new(eval_metric_within));
        reg.register("reduction_at_least", Box::new(eval_reduction_at_least));
        reg.register("ratio_at_least", Box::new(eval_ratio_at_least));
        reg
    }

    /// Installs (or replaces) the evaluator for `kind`.
    pub fn register(&mut self, kind: impl Into<String>, evaluator: Evaluator) {
        self.evaluators.insert(kind.into(), evaluator);
    }

    /// The registered kind tags, sorted.
    pub fn kinds(&self) -> Vec<&str> {
        self.evaluators.keys().map(String::as_str).collect()
    }

    /// Judges one assertion, dispatching on its kind tag.
    pub fn evaluate(
        &self,
        assertion: &Assertion,
        result: &CampaignResult,
    ) -> Result<AssertionOutcome, ScenarioError> {
        let kind = assertion.kind();
        let eval = self
            .evaluators
            .get(kind)
            .ok_or_else(|| ScenarioError::NoEvaluator {
                kind: kind.to_string(),
            })?;
        Ok(eval(assertion, result))
    }
}

/// Resolves a selector against the result's cells: exactly one match or
/// a human-readable refusal (no match, or ambiguous match).
fn resolve<'r>(
    result: &'r CampaignResult,
    sel: &CellSelector,
) -> Result<(String, &'r Report), String> {
    let mut matches = result.cells().iter().filter(|c| {
        c.key.workload == sel.workload
            && c.key.scheduler == sel.scheduler
            && c.key.cores == sel.cores
            && sel.team_size.is_none_or(|t| c.key.team_size == t)
    });
    match (matches.next(), matches.next()) {
        (Some(cell), None) => Ok((cell.key.to_string(), &cell.report)),
        (None, _) => Err(format!("no cell matches selector {sel}")),
        (Some(_), Some(_)) => Err(format!(
            "selector {sel} is ambiguous (multiple team sizes match; pin team_size)"
        )),
    }
}

/// A failed outcome for a selector that did not resolve.
fn unresolved(kind: &str, sel: &CellSelector, expected: String, why: String) -> AssertionOutcome {
    AssertionOutcome {
        kind: kind.to_string(),
        passed: false,
        cell: sel.to_string(),
        expected,
        observed: why,
    }
}

fn eval_throughput_at_least(a: &Assertion, result: &CampaignResult) -> AssertionOutcome {
    let Assertion::ThroughputAtLeast { cell, min } = a else {
        return mismatched_kind(a, "throughput_at_least");
    };
    let expected = format!("steady throughput >= {min} txn/cycle");
    match resolve(result, cell) {
        Ok((key, report)) => {
            let observed = report.steady_throughput();
            AssertionOutcome {
                kind: a.kind().to_string(),
                passed: observed >= *min,
                cell: key,
                expected,
                observed: format!("{observed} txn/cycle"),
            }
        }
        Err(why) => unresolved(a.kind(), cell, expected, why),
    }
}

fn eval_metric_within(a: &Assertion, result: &CampaignResult) -> AssertionOutcome {
    let Assertion::MetricWithin {
        cell,
        metric,
        min,
        max,
    } = a
    else {
        return mismatched_kind(a, "metric_within");
    };
    let expected = format!("{} in [{min}, {max}]", metric.key());
    match resolve(result, cell) {
        Ok((key, report)) => {
            let observed = metric.of(report);
            AssertionOutcome {
                kind: a.kind().to_string(),
                passed: (*min..=*max).contains(&observed),
                cell: key,
                expected,
                observed: format!("{} = {observed}", metric.key()),
            }
        }
        Err(why) => unresolved(a.kind(), cell, expected, why),
    }
}

fn eval_reduction_at_least(a: &Assertion, result: &CampaignResult) -> AssertionOutcome {
    let Assertion::ReductionAtLeast {
        metric,
        from,
        to,
        min_percent,
    } = a
    else {
        return mismatched_kind(a, "reduction_at_least");
    };
    let expected = format!("{} reduced by >= {min_percent}% vs {from}", metric.key());
    let (from_key, from_report) = match resolve(result, from) {
        Ok(found) => found,
        Err(why) => return unresolved(a.kind(), from, expected, why),
    };
    let (to_key, to_report) = match resolve(result, to) {
        Ok(found) => found,
        Err(why) => return unresolved(a.kind(), to, expected, why),
    };
    let from_value = metric.of(from_report);
    let to_value = metric.of(to_report);
    if from_value <= 0.0 {
        return AssertionOutcome {
            kind: a.kind().to_string(),
            passed: false,
            cell: from_key,
            expected,
            observed: format!(
                "{} = {from_value} at the reference cell (no reduction is computable)",
                metric.key()
            ),
        };
    }
    let reduction = (from_value - to_value) / from_value * 100.0;
    AssertionOutcome {
        kind: a.kind().to_string(),
        passed: reduction >= *min_percent,
        cell: to_key,
        expected,
        observed: format!(
            "{} = {to_value} vs {from_value} ({reduction:.2}% reduction)",
            metric.key()
        ),
    }
}

fn eval_ratio_at_least(a: &Assertion, result: &CampaignResult) -> AssertionOutcome {
    let Assertion::RatioAtLeast {
        metric,
        numerator,
        denominator,
        min,
    } = a
    else {
        return mismatched_kind(a, "ratio_at_least");
    };
    let expected = format!("{} ratio >= {min} vs {denominator}", metric.key());
    let (_den_key, den_report) = match resolve(result, denominator) {
        Ok(found) => found,
        Err(why) => return unresolved(a.kind(), denominator, expected, why),
    };
    let (num_key, num_report) = match resolve(result, numerator) {
        Ok(found) => found,
        Err(why) => return unresolved(a.kind(), numerator, expected, why),
    };
    let num_value = metric.of(num_report);
    let den_value = metric.of(den_report);
    if den_value <= 0.0 {
        return AssertionOutcome {
            kind: a.kind().to_string(),
            passed: false,
            cell: num_key,
            expected,
            observed: format!(
                "{} = {den_value} at the denominator cell (no ratio is computable)",
                metric.key()
            ),
        };
    }
    let ratio = num_value / den_value;
    AssertionOutcome {
        kind: a.kind().to_string(),
        passed: ratio >= *min,
        cell: num_key,
        expected,
        observed: format!(
            "{} = {num_value} vs {den_value} (ratio {ratio:.4})",
            metric.key()
        ),
    }
}

/// The outcome when an evaluator is handed an assertion of a different
/// kind than it was registered under — possible only through
/// [`EvaluatorRegistry::register`] misuse, and reported as a failed
/// outcome rather than a panic because evaluation sits behind the same
/// trust boundary as parsing.
fn mismatched_kind(a: &Assertion, registered: &str) -> AssertionOutcome {
    AssertionOutcome {
        kind: a.kind().to_string(),
        passed: false,
        cell: "-".to_string(),
        expected: format!("an assertion of kind {registered:?}"),
        observed: format!("assertion of kind {:?} (registry misconfigured)", a.kind()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_json() -> String {
        r#"{
            "name": "t",
            "matrix": {
                "workloads": ["TPC-C-1"],
                "pool": 8,
                "seed": 42,
                "schedulers": ["baseline", "strex"],
                "cores": [2]
            },
            "assertions": [
                {"kind": "throughput_at_least",
                 "cell": {"workload": "TPC-C-1", "scheduler": "strex", "cores": 2},
                 "min": 0.0}
            ]
        }"#
        .to_string()
    }

    #[test]
    fn parses_a_minimal_scenario() {
        let s = Scenario::from_json(&minimal_json()).expect("valid scenario");
        assert_eq!(s.name, "t");
        assert_eq!(s.description, None);
        assert_eq!(s.matrix.workloads, ["TPC-C-1"]);
        assert!(s.matrix.small, "small defaults to true");
        assert_eq!(s.matrix.team_sizes, None);
        assert_eq!(s.assertions.len(), 1);
        assert_eq!(s.assertions[0].kind(), "throughput_at_least");
    }

    #[test]
    fn round_trips_through_to_json() {
        let s = Scenario::from_json(&minimal_json()).unwrap();
        let again = Scenario::from_json(&s.to_json()).unwrap();
        assert_eq!(s, again);
        assert_eq!(s.to_json(), again.to_json());
    }

    #[test]
    fn unknown_fields_are_typed_errors() {
        let doc = minimal_json().replace("\"name\": \"t\",", "\"name\": \"t\", \"extra\": 1,");
        match Scenario::from_json(&doc) {
            Err(ScenarioError::UnknownField { path }) => assert_eq!(path, "extra"),
            other => panic!("expected UnknownField, got {other:?}"),
        }
        let doc = minimal_json().replace("\"pool\": 8,", "\"pool\": 8, \"poool\": 8,");
        match Scenario::from_json(&doc) {
            Err(ScenarioError::UnknownField { path }) => assert_eq!(path, "matrix.poool"),
            other => panic!("expected UnknownField, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_values_are_typed_errors() {
        let doc = minimal_json().replace("\"pool\": 8,", "\"pool\": 0,");
        assert!(matches!(
            Scenario::from_json(&doc),
            Err(ScenarioError::OutOfRange { .. })
        ));
        let doc = minimal_json().replace("\"cores\": [2]", "\"cores\": [0]");
        assert!(matches!(
            Scenario::from_json(&doc),
            Err(ScenarioError::OutOfRange { .. })
        ));
        let doc = minimal_json().replace("\"cores\": [2]", "\"cores\": []");
        match Scenario::from_json(&doc) {
            Err(ScenarioError::OutOfRange { path, .. }) => assert_eq!(path, "matrix.cores"),
            other => panic!("expected OutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn unknown_names_are_typed_errors() {
        let doc = minimal_json().replace("[\"TPC-C-1\"]", "[\"TPC-Z\"]");
        match Scenario::from_json(&doc) {
            Err(ScenarioError::UnknownName { path, name, .. }) => {
                assert_eq!(path, "matrix.workloads[0]");
                assert_eq!(name, "TPC-Z");
            }
            other => panic!("expected UnknownName, got {other:?}"),
        }
        let doc = minimal_json().replace("throughput_at_least", "throughput_atleast");
        assert!(matches!(
            Scenario::from_json(&doc),
            Err(ScenarioError::UnknownName { .. })
        ));
    }

    #[test]
    fn malformed_json_is_a_typed_error() {
        assert!(matches!(
            Scenario::from_json("{"),
            Err(ScenarioError::Json(_))
        ));
        assert!(matches!(
            Scenario::from_json("[1,2]"),
            Err(ScenarioError::Mistyped { .. })
        ));
    }

    #[test]
    fn inverted_window_is_rejected() {
        let doc = r#"{
            "name": "t",
            "matrix": {"workloads": ["TPC-E"], "pool": 8, "seed": 1,
                       "schedulers": ["strex"], "cores": [2]},
            "assertions": [
                {"kind": "metric_within",
                 "cell": {"workload": "TPC-E", "scheduler": "strex", "cores": 2},
                 "metric": "i_mpki", "min": 10.0, "max": 2.0}
            ]
        }"#;
        assert!(matches!(
            Scenario::from_json(doc),
            Err(ScenarioError::OutOfRange { .. })
        ));
    }

    #[test]
    fn metric_keys_round_trip() {
        for m in Metric::ALL {
            assert_eq!(Metric::from_key(m.key()), Some(m));
        }
        assert_eq!(Metric::from_key("nonsense"), None);
    }

    /// A small real result with two cells (baseline and strex) for the
    /// boundary-value evaluator tests; the simulation is deterministic,
    /// so the metric values are stable across runs.
    fn tiny_result() -> CampaignResult {
        use crate::campaign::Campaign;
        use crate::config::SchedulerKind;
        let w = Workload::preset_small(WorkloadKind::TpccW1, 4, 7);
        Campaign::new(SimConfig::builder().build().unwrap())
            .over_schedulers([SchedulerKind::Baseline, SchedulerKind::Strex])
            .over_workloads([&w])
            .over_cores([2])
            .run()
            .expect("tiny matrix is valid")
    }

    #[test]
    fn selector_resolution_and_ambiguity() {
        let result = tiny_result();
        let sel = CellSelector {
            workload: "TPC-C-1".into(),
            scheduler: "strex".into(),
            cores: 2,
            team_size: None,
        };
        let (key, _) = resolve(&result, &sel).expect("one match");
        assert!(key.starts_with("TPC-C-1/strex/c2/t"), "{key}");
        let missing = CellSelector {
            cores: 16,
            ..sel.clone()
        };
        let err = resolve(&result, &missing).unwrap_err();
        assert!(err.contains("no cell matches"), "{err}");
        assert!(err.contains("TPC-C-1/strex/c16"), "{err}");
    }

    #[test]
    fn evaluators_judge_boundaries_inclusively() {
        let result = tiny_result();
        let reg = EvaluatorRegistry::with_defaults();
        let cell = CellSelector {
            workload: "TPC-C-1".into(),
            scheduler: "strex".into(),
            cores: 2,
            team_size: None,
        };
        let report = resolve(&result, &cell).unwrap().1;
        let tp = report.steady_throughput();
        let mpki = report.i_mpki();

        // throughput_at_least: exactly at the bound passes.
        let at = Assertion::ThroughputAtLeast {
            cell: cell.clone(),
            min: tp,
        };
        assert!(reg.evaluate(&at, &result).unwrap().passed);
        let above = Assertion::ThroughputAtLeast {
            cell: cell.clone(),
            min: tp * 1.0001 + f64::MIN_POSITIVE,
        };
        let outcome = reg.evaluate(&above, &result).unwrap();
        assert!(!outcome.passed);
        assert!(outcome.observed.contains("txn/cycle"), "{outcome}");

        // metric_within: both bounds are inclusive.
        let window = |min: f64, max: f64| Assertion::MetricWithin {
            cell: cell.clone(),
            metric: Metric::IMpki,
            min,
            max,
        };
        assert!(reg.evaluate(&window(mpki, mpki), &result).unwrap().passed);
        assert!(
            !reg.evaluate(&window(0.0, mpki * 0.999), &result)
                .unwrap()
                .passed
        );
        assert!(
            !reg.evaluate(&window(mpki * 1.001, mpki * 2.0), &result)
                .unwrap()
                .passed
        );
    }

    #[test]
    fn reduction_and_ratio_compare_cells() {
        let result = tiny_result();
        let reg = EvaluatorRegistry::with_defaults();
        let base = CellSelector {
            workload: "TPC-C-1".into(),
            scheduler: "baseline".into(),
            cores: 2,
            team_size: None,
        };
        let strex = CellSelector {
            workload: "TPC-C-1".into(),
            scheduler: "strex".into(),
            cores: 2,
            team_size: None,
        };
        let base_mpki = Metric::IMpki.of(resolve(&result, &base).unwrap().1);
        let strex_mpki = Metric::IMpki.of(resolve(&result, &strex).unwrap().1);
        let actual = (base_mpki - strex_mpki) / base_mpki * 100.0;
        assert!(actual > 0.0, "STREX reduces I-MPKI even on a tiny pool");

        // Exactly the observed reduction passes; more fails.
        let exact = Assertion::ReductionAtLeast {
            metric: Metric::IMpki,
            from: base.clone(),
            to: strex.clone(),
            min_percent: actual - 1e-9,
        };
        let outcome = reg.evaluate(&exact, &result).unwrap();
        assert!(outcome.passed, "{outcome}");
        assert!(outcome.observed.contains("reduction"), "{outcome}");
        let too_much = Assertion::ReductionAtLeast {
            metric: Metric::IMpki,
            from: base.clone(),
            to: strex.clone(),
            min_percent: (actual + 0.5).min(100.0),
        };
        assert!(!reg.evaluate(&too_much, &result).unwrap().passed);

        // ratio_at_least on the inverse direction.
        let ratio = Assertion::RatioAtLeast {
            metric: Metric::IMpki,
            numerator: base.clone(),
            denominator: strex.clone(),
            min: base_mpki / strex_mpki - 1e-9,
        };
        assert!(reg.evaluate(&ratio, &result).unwrap().passed);
    }

    #[test]
    fn unresolved_selectors_fail_with_diagnostics_not_errors() {
        let result = tiny_result();
        let reg = EvaluatorRegistry::with_defaults();
        let a = Assertion::ThroughputAtLeast {
            cell: CellSelector {
                workload: "TPC-E".into(),
                scheduler: "strex".into(),
                cores: 2,
                team_size: None,
            },
            min: 0.0,
        };
        let outcome = reg.evaluate(&a, &result).unwrap();
        assert!(!outcome.passed);
        assert!(outcome.observed.contains("no cell matches"), "{outcome}");
    }

    #[test]
    fn empty_registry_reports_missing_evaluators() {
        let result = tiny_result();
        let reg = EvaluatorRegistry::new();
        let a = Assertion::ThroughputAtLeast {
            cell: CellSelector {
                workload: "TPC-C-1".into(),
                scheduler: "strex".into(),
                cores: 2,
                team_size: None,
            },
            min: 0.0,
        };
        assert!(matches!(
            reg.evaluate(&a, &result),
            Err(ScenarioError::NoEvaluator { .. })
        ));
        assert!(EvaluatorRegistry::with_defaults().kinds().len() >= 4);
    }

    #[test]
    fn campaign_matches_declared_matrix() {
        let s = Scenario::from_json(&minimal_json()).unwrap();
        let workloads = s.workloads();
        assert_eq!(workloads.len(), 1);
        let cells = s
            .campaign(&workloads)
            .cells(crate::sched::registry::global())
            .expect("valid matrix");
        // 1 workload x 2 schedulers x 1 core count x 1 (default) team size.
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].0.workload, "TPC-C-1");
    }

    #[test]
    fn outcome_display_names_everything() {
        let o = AssertionOutcome {
            kind: "metric_within".into(),
            passed: false,
            cell: "TPC-C-1/strex/c2/t10".into(),
            expected: "i_mpki in [1, 2]".into(),
            observed: "i_mpki = 3".into(),
        };
        let line = o.to_string();
        assert!(line.starts_with("FAIL metric_within @ TPC-C-1/strex/c2/t10"));
        assert!(line.contains("expected i_mpki in [1, 2]"));
        assert!(line.contains("observed i_mpki = 3"));
    }
}
