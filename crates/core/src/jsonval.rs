//! Dependency-free JSON parsing — the read side of the campaign wire
//! format.
//!
//! The workspace is offline (no serde), so [`crate::json::JsonWriter`]
//! emits JSON and this module parses it back. Originally a perf-gate
//! helper in `strex-bench`, the parser moved here when campaign shards
//! started crossing process boundaries: `repro dist` children serialize a
//! [`CampaignShard`](crate::campaign::CampaignShard) over stdout and the
//! parent reassembles it through this module, so parse fidelity is now a
//! correctness requirement, not a tooling convenience.
//!
//! The parser is a strict recursive-descent over a complete document:
//! trailing garbage, malformed escapes and lone surrogates are loud
//! [`JsonError`]s with byte offsets. All JSON string escapes are decoded,
//! including `\uXXXX` with UTF-16 surrogate-pair handling (the writer
//! emits `\u` only for control characters, but wire documents may come
//! from any producer). Numbers parse as `f64`: exact for every integer
//! counter below 2^53, which covers every counter the simulator emits by
//! a wide margin.
//!
//! For mapping parsed values onto typed structures
//! ([`Report::from_json`](crate::report::Report::from_json),
//! [`CampaignShard::from_json`](crate::campaign::CampaignShard::from_json))
//! the `req_*` accessors return [`WireError`]s that name the missing or
//! mistyped path. The scenario DSL ([`crate::scenario`]) parses through
//! this module too, layering its own unknown-field and range validation
//! on top of the same trust boundary.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`; integers are exact below 2^53).
    Number(f64),
    /// A string, with all escapes (including `\uXXXX`) resolved.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Key order is not preserved (no consumer needs it).
    Object(BTreeMap<String, JsonValue>),
}

/// Why parsing failed: byte offset and message.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// A structurally valid JSON document that doesn't decode to the expected
/// typed shape (missing key, wrong type, out-of-range number).
#[derive(Clone, Debug, PartialEq)]
pub struct WireError {
    /// What was expected and where (a dotted path when available).
    pub message: String,
}

impl WireError {
    /// A wire error with `message`.
    pub fn new(message: impl Into<String>) -> Self {
        WireError {
            message: message.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire format error: {}", self.message)
    }
}

impl std::error::Error for WireError {}

impl From<JsonError> for WireError {
    fn from(e: JsonError) -> Self {
        WireError::new(e.to_string())
    }
}

impl JsonValue {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Walks a dot-separated path of object keys (`"baseline.total_events"`).
    /// Returns `None` if any component is missing or not an object.
    pub fn get(&self, path: &str) -> Option<&JsonValue> {
        let mut cur = self;
        for key in path.split('.') {
            match cur {
                JsonValue::Object(map) => cur = map.get(key)?,
                _ => return None,
            }
        }
        Some(cur)
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a non-negative whole
    /// number small enough that the `f64` representation is exact.
    /// The bound is exclusive: at 2^53 and above, neighboring integers
    /// collapse onto the same `f64`, so a value there may already have
    /// been silently rounded during parsing — better a loud `None` than
    /// an off-by-one counter.
    pub fn as_u64(&self) -> Option<u64> {
        const EXACT: f64 = (1u64 << 53) as f64;
        match self {
            JsonValue::Number(n) if *n >= 0.0 && *n < EXACT && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(map) => Some(map),
            _ => None,
        }
    }

    /// [`get`](JsonValue::get) that names the missing path in its error.
    pub fn req(&self, path: &str) -> Result<&JsonValue, WireError> {
        self.get(path)
            .ok_or_else(|| WireError::new(format!("missing `{path}`")))
    }

    /// A required unsigned-integer field at `path`.
    pub fn req_u64(&self, path: &str) -> Result<u64, WireError> {
        self.req(path)?
            .as_u64()
            .ok_or_else(|| WireError::new(format!("`{path}` is not an unsigned integer")))
    }

    /// A required number field at `path`.
    pub fn req_f64(&self, path: &str) -> Result<f64, WireError> {
        self.req(path)?
            .as_f64()
            .ok_or_else(|| WireError::new(format!("`{path}` is not a number")))
    }

    /// A required string field at `path`.
    pub fn req_str(&self, path: &str) -> Result<&str, WireError> {
        self.req(path)?
            .as_str()
            .ok_or_else(|| WireError::new(format!("`{path}` is not a string")))
    }

    /// A required array field at `path`.
    pub fn req_array(&self, path: &str) -> Result<&[JsonValue], WireError> {
        self.req(path)?
            .as_array()
            .ok_or_else(|| WireError::new(format!("`{path}` is not an array")))
    }

    /// A required boolean field at `path`.
    pub fn req_bool(&self, path: &str) -> Result<bool, WireError> {
        self.req(path)?
            .as_bool()
            .ok_or_else(|| WireError::new(format!("`{path}` is not a boolean")))
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Maximum container nesting the parser accepts. Our documents nest a
/// handful of levels; recursion beyond this bound is corrupt (or
/// adversarial) wire input, and the parser is a trust boundary — it must
/// answer with a [`JsonError`], never a stack overflow.
const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        self.descend()?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        self.descend()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    /// One container level deeper; errors past [`MAX_DEPTH`] so hostile
    /// nesting cannot overflow the parse recursion.
    fn descend(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than the wire format allows"));
        }
        Ok(())
    }

    /// Four hex digits of a `\uXXXX` escape.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected four hex digits after \\u")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    /// Decodes one `\uXXXX` escape (the `\u` is already consumed),
    /// pairing UTF-16 surrogates: a high surrogate must be followed by
    /// `\uXXXX` holding the low half; unpaired halves are errors.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        match hi {
            0xD800..=0xDBFF => {
                if self.peek() != Some(b'\\') || self.bytes.get(self.pos + 1) != Some(&b'u') {
                    return Err(self.err("high surrogate not followed by \\u escape"));
                }
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..=0xDFFF).contains(&lo) {
                    return Err(self.err("high surrogate followed by a non-low-surrogate"));
                }
                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"))
            }
            0xDC00..=0xDFFF => Err(self.err("lone low surrogate")),
            cp => char::from_u32(cp).ok_or_else(|| self.err("invalid \\u code point")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so byte
                    // boundaries are valid).
                    let start = self.pos;
                    let mut end = self.pos + 1;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(
            JsonValue::parse("-1.5e2").unwrap(),
            JsonValue::Number(-150.0)
        );
        assert_eq!(
            JsonValue::parse(r#""a\nb""#).unwrap(),
            JsonValue::String("a\nb".into())
        );
    }

    #[test]
    fn parses_nested_structures_and_paths() {
        let doc = JsonValue::parse(
            r#"{"baseline":{"total_events":123,"cells":[{"w":"x"},{"w":"y"}]},"ratio":1.25}"#,
        )
        .unwrap();
        assert_eq!(
            doc.get("baseline.total_events").unwrap().as_f64(),
            Some(123.0)
        );
        assert_eq!(doc.get("ratio").unwrap().as_f64(), Some(1.25));
        let cells = doc.get("baseline.cells").unwrap().as_array().unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[1].get("w").unwrap().as_str(), Some("y"));
        assert!(doc.get("missing.path").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("12 34").is_err());
        assert!(JsonValue::parse(r#"{"a" 1}"#).is_err());
        assert!(JsonValue::parse("tru").is_err());
    }

    #[test]
    fn decodes_unicode_escapes() {
        assert_eq!(
            JsonValue::parse(r#""\u0041\u00e9\u6f22""#).unwrap(),
            JsonValue::String("A\u{e9}\u{6f22}".into())
        );
        // Control characters — what the writer actually emits as \u.
        assert_eq!(
            JsonValue::parse(r#""\u0000\u001f""#).unwrap(),
            JsonValue::String("\u{0}\u{1f}".into())
        );
        // Uppercase hex is accepted.
        assert_eq!(
            JsonValue::parse(r#""\u00E9""#).unwrap(),
            JsonValue::String("\u{e9}".into())
        );
    }

    #[test]
    fn decodes_surrogate_pairs() {
        // U+1F600 GRINNING FACE as the canonical UTF-16 escape pair.
        assert_eq!(
            JsonValue::parse(r#""\ud83d\ude00""#).unwrap(),
            JsonValue::String("\u{1f600}".into())
        );
        // Highest astral code point.
        assert_eq!(
            JsonValue::parse(r#""\udbff\udfff""#).unwrap(),
            JsonValue::String("\u{10FFFF}".into())
        );
    }

    #[test]
    fn rejects_broken_surrogates_and_escapes() {
        // Lone high surrogate (end of string, or followed by a normal char).
        assert!(JsonValue::parse(r#""\ud83d""#).is_err());
        assert!(JsonValue::parse(r#""\ud83dx""#).is_err());
        // High surrogate followed by a non-surrogate escape.
        assert!(JsonValue::parse(r#""\ud83dA""#).is_err());
        // Lone low surrogate.
        assert!(JsonValue::parse(r#""\ude00""#).is_err());
        // Bad hex.
        assert!(JsonValue::parse(r#""\u00g1""#).is_err());
        assert!(JsonValue::parse(r#""\u00""#).is_err());
    }

    #[test]
    fn hostile_nesting_is_an_error_not_a_stack_overflow() {
        let deep_ok = format!("{}0{}", "[".repeat(100), "]".repeat(100));
        assert!(JsonValue::parse(&deep_ok).is_ok());
        let bomb = "[".repeat(100_000);
        let err = JsonValue::parse(&bomb).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        let obj_bomb = "{\"k\":".repeat(100_000);
        assert!(JsonValue::parse(&obj_bomb).is_err());
    }

    #[test]
    fn u64_accessor_is_exact_or_nothing() {
        assert_eq!(JsonValue::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(JsonValue::parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(JsonValue::parse("-1").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("\"42\"").unwrap().as_u64(), None);
        // The largest exactly-representable integer is accepted; from
        // 2^53 up, 9007199254740993 would silently parse as …992, so the
        // whole region is rejected rather than risk off-by-one counters.
        assert_eq!(
            JsonValue::parse("9007199254740991").unwrap().as_u64(),
            Some((1 << 53) - 1)
        );
        assert_eq!(JsonValue::parse("9007199254740992").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("9007199254740993").unwrap().as_u64(), None);
    }

    #[test]
    fn req_accessors_name_the_path() {
        let doc = JsonValue::parse(r#"{"a":{"b":1},"s":"x"}"#).unwrap();
        assert_eq!(doc.req_u64("a.b").unwrap(), 1);
        assert_eq!(doc.req_str("s").unwrap(), "x");
        let err = doc.req_u64("a.missing").unwrap_err();
        assert!(err.to_string().contains("a.missing"), "{err}");
        let err = doc.req_u64("s").unwrap_err();
        assert!(err.to_string().contains("unsigned"), "{err}");
    }

    #[test]
    fn round_trips_a_writer_document() {
        // The exact producer this reader exists for.
        let mut w = crate::json::JsonWriter::new();
        w.begin_object();
        w.key("label");
        w.string("seed \"quoted\"");
        w.key("events_per_sec");
        w.float(7.49e6);
        w.key("cells");
        w.begin_array();
        w.begin_object();
        w.key("n");
        w.number_u64(42);
        w.end_object();
        w.end_array();
        w.end_object();
        let doc = JsonValue::parse(&w.finish()).unwrap();
        assert_eq!(doc.get("label").unwrap().as_str(), Some("seed \"quoted\""));
        assert_eq!(doc.get("events_per_sec").unwrap().as_f64(), Some(7.49e6));
        assert_eq!(
            doc.get("cells").unwrap().as_array().unwrap()[0]
                .get("n")
                .unwrap()
                .as_f64(),
            Some(42.0)
        );
    }
}
