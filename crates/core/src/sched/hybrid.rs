//! The hybrid STREX+SLICC mechanism (Section 5.5).
//!
//! Data centers reconfigure the cores assigned to an application at
//! runtime. SLICC wins when the aggregate L1-I capacity fits the workload's
//! per-transaction footprints; STREX wins otherwise. The hybrid profiles
//! each transaction type's instruction footprint into an **FPTable**
//! (in L1-I-size units) and, whenever a transaction group is scheduled,
//! picks SLICC if the available core count covers the table's demand and
//! STREX if not.
//!
//! Profiling counts the unique cache blocks a sampled transaction touches —
//! in hardware this reuses STREX's phase-ID tables while running under
//! SLICC (Section 5.5); here the same quantity is computed from the sampled
//! thread's trace, and the profiling period (0.2 % of execution) is charged
//! as free, as the paper treats it.

use std::collections::BTreeMap;

use strex_oltp::trace::TxnTrace;
use strex_sim::addr::BlockAddr;
use strex_sim::hierarchy::{InstFetch, MemorySystem};
use strex_sim::ids::{CoreId, Cycle, ThreadId, TxnTypeId};

use super::{BaselineSched, Decision, Scheduler, SliccSched, StrexSched};
use crate::config::{SliccParams, StrexParams};
use crate::thread::TxnThread;

/// The transaction-footprint-size table (FPTable) of Section 5.5.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FpTable {
    /// Footprint in L1-I units per transaction type.
    entries: BTreeMap<TxnTypeId, u64>,
}

impl FpTable {
    /// Builds the table by sampling one transaction per type from `traces`
    /// and rounding its unique-block footprint to L1-I units.
    pub fn profile(traces: &[TxnTrace], l1i_bytes: u64) -> Self {
        let mut entries = BTreeMap::new();
        for t in traces {
            // First instance of each type is the random sample (instances
            // are already randomly drawn by the generator).
            entries.entry(t.txn_type()).or_insert_with(|| {
                let bytes = t.unique_code_blocks() as u64 * strex_sim::addr::BLOCK_SIZE;
                ((bytes as f64 / l1i_bytes as f64).round() as u64).max(1)
            });
        }
        FpTable { entries }
    }

    /// Footprint units recorded for `txn_type`.
    pub fn units(&self, txn_type: TxnTypeId) -> Option<u64> {
        self.entries.get(&txn_type).copied()
    }

    /// Number of profiled types.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing was profiled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Mean footprint over the types present — the workload's demand used
    /// by the scheduling decision. (TPC-C's mean of {12, 14, 11, 14, 11}
    /// is ≈ 12.4, matching the paper's ">12 cores → SLICC"; TPC-E's mean of
    /// {7, 9, 9, 5, 9, 8, 8} is ≈ 7.9, matching ">8 cores → SLICC".)
    pub fn mean_units(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.entries.values().sum::<u64>() as f64 / self.entries.len() as f64
    }

    /// The Section 5.5 rule: SLICC if the aggregate L1-I (`n_cores` units)
    /// fits the workload's footprint demand.
    pub fn choose_slicc(&self, n_cores: usize) -> bool {
        !self.is_empty() && (n_cores as f64) >= self.mean_units()
    }
}

/// The hybrid scheduler: profiles, then delegates wholesale.
///
/// # Examples
///
/// ```
/// use strex::config::{SliccParams, StrexParams};
/// use strex::sched::{HybridSched, Scheduler};
///
/// let sched = HybridSched::new(StrexParams::default(), SliccParams::default(), 32 * 1024);
/// assert_eq!(sched.name(), "STREX+SLICC");
/// ```
#[derive(Debug)]
pub struct HybridSched {
    strex_params: StrexParams,
    slicc_params: SliccParams,
    l1i_bytes: u64,
    fptable: FpTable,
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    /// Placeholder until `init` runs.
    Unset(BaselineSched),
    Strex(StrexSched),
    Slicc(SliccSched),
}

/// Forwards one call to the selected delegate with *static* dispatch: each
/// `Inner` arm names the concrete scheduler type, so when the driver's
/// monomorphized loop is instantiated for `HybridSched`, the per-event
/// forwarding is one enum discriminant branch plus an inlinable call — no
/// vtable on the path (the previous `&mut dyn Scheduler` accessor put one
/// back on every delegated call).
///
/// Deliberately **not** forwarded: `pre_fetch`, `pre_fetch_probed` and
/// `uses_victim_monitor` stay at their trait defaults, so a
/// hybrid-selected STREX delegate runs *without* the rule-3 victim
/// monitor. That has been the hybrid's behavior since the seed (the old
/// `dyn` accessor never forwarded `pre_fetch` either) and it is pinned by
/// the golden report snapshot; forwarding it now would change every
/// hybrid cell's results. Revisit only together with a deliberate golden
/// re-baseline.
macro_rules! delegate {
    ($self:ident, $s:ident => $call:expr) => {
        match &mut $self.inner {
            Inner::Unset($s) => $call,
            Inner::Strex($s) => $call,
            Inner::Slicc($s) => $call,
        }
    };
}

/// Immutable twin of [`delegate!`].
macro_rules! delegate_ref {
    ($self:ident, $s:ident => $call:expr) => {
        match &$self.inner {
            Inner::Unset($s) => $call,
            Inner::Strex($s) => $call,
            Inner::Slicc($s) => $call,
        }
    };
}

impl HybridSched {
    /// Creates the hybrid with both schedulers' parameters and the L1-I
    /// size used as the FPTable unit.
    pub fn new(strex_params: StrexParams, slicc_params: SliccParams, l1i_bytes: u64) -> Self {
        HybridSched {
            strex_params,
            slicc_params,
            l1i_bytes,
            fptable: FpTable::default(),
            inner: Inner::Unset(BaselineSched::new()),
        }
    }

    /// The FPTable produced at init (empty before `init`).
    pub fn fptable(&self) -> &FpTable {
        &self.fptable
    }

    /// Which scheduler the decision selected ("STREX" or "SLICC").
    pub fn selected(&self) -> &'static str {
        match &self.inner {
            Inner::Unset(_) => "unset",
            Inner::Strex(_) => "STREX",
            Inner::Slicc(_) => "SLICC",
        }
    }
}

impl Scheduler for HybridSched {
    fn name(&self) -> &'static str {
        "STREX+SLICC"
    }

    fn init(&mut self, threads: &[TxnThread], traces: &[TxnTrace], n_cores: usize) {
        self.fptable = FpTable::profile(traces, self.l1i_bytes);
        self.inner = if self.fptable.choose_slicc(n_cores) {
            Inner::Slicc(SliccSched::new(self.slicc_params))
        } else {
            Inner::Strex(StrexSched::new(self.strex_params))
        };
        delegate!(self, s => s.init(threads, traces, n_cores));
    }

    fn next_thread(&mut self, core: CoreId, now: Cycle) -> Option<ThreadId> {
        delegate!(self, s => s.next_thread(core, now))
    }

    fn on_sched_in(&mut self, core: CoreId, thread: ThreadId) {
        delegate!(self, s => s.on_sched_in(core, thread));
    }

    fn phase_tag(&self, core: CoreId) -> u8 {
        delegate_ref!(self, s => s.phase_tag(core))
    }

    fn on_fetch(
        &mut self,
        core: CoreId,
        thread: ThreadId,
        block: BlockAddr,
        fetch: &InstFetch,
        mem: &MemorySystem,
    ) -> Decision {
        delegate!(self, s => s.on_fetch(core, thread, block, fetch, mem))
    }

    fn on_switch(&mut self, core: CoreId, thread: ThreadId) {
        delegate!(self, s => s.on_switch(core, thread));
    }

    fn on_migrate(&mut self, thread: ThreadId, dst: CoreId) {
        delegate!(self, s => s.on_migrate(thread, dst));
    }

    fn on_done(&mut self, core: CoreId, thread: ThreadId, now: Cycle) {
        delegate!(self, s => s.on_done(core, thread, now));
    }

    fn has_pending_work(&self) -> bool {
        delegate_ref!(self, s => s.has_pending_work())
    }

    fn context_switches(&self) -> u64 {
        delegate_ref!(self, s => s.context_switches())
    }

    fn migrations(&self) -> u64 {
        delegate_ref!(self, s => s.migrations())
    }

    fn hybrid_choice(&self) -> Option<&'static str> {
        match &self.inner {
            Inner::Unset(_) => None,
            Inner::Strex(_) => Some("STREX"),
            Inner::Slicc(_) => Some("SLICC"),
        }
    }

    fn is_passive(&self) -> bool {
        // Forward the delegate's answer once one is chosen; before `init`
        // the placeholder must not claim the fast path.
        match &self.inner {
            Inner::Unset(_) => false,
            Inner::Strex(s) => s.is_passive(),
            Inner::Slicc(s) => s.is_passive(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strex_oltp::trace::MemRef;

    /// A synthetic trace touching `blocks` distinct code blocks.
    fn trace_with_footprint(ty: u16, blocks: u64) -> TxnTrace {
        let refs: Vec<MemRef> = (0..blocks)
            .map(|i| MemRef::IFetch {
                block: BlockAddr::new(1000 * ty as u64 + i),
                instrs: 10,
            })
            .collect();
        TxnTrace::new(TxnTypeId::new(ty), "synthetic", refs)
    }

    #[test]
    fn fptable_rounds_to_units() {
        // 1024 blocks = 64 KB = 2 x 32 KB units.
        let traces = vec![trace_with_footprint(0, 1024)];
        let fp = FpTable::profile(&traces, 32 * 1024);
        assert_eq!(fp.units(TxnTypeId::new(0)), Some(2));
        assert_eq!(fp.len(), 1);
    }

    #[test]
    fn fptable_samples_first_instance_per_type() {
        let traces = vec![
            trace_with_footprint(0, 512),
            trace_with_footprint(0, 9999), // ignored: already sampled
            trace_with_footprint(1, 1536),
        ];
        let fp = FpTable::profile(&traces, 32 * 1024);
        assert_eq!(fp.units(TxnTypeId::new(0)), Some(1));
        assert_eq!(fp.units(TxnTypeId::new(1)), Some(3));
        assert!((fp.mean_units() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn decision_follows_mean_rule() {
        let traces = vec![
            trace_with_footprint(0, 6 * 512),  // 6 units
            trace_with_footprint(1, 10 * 512), // 10 units
        ];
        let fp = FpTable::profile(&traces, 32 * 1024);
        assert!((fp.mean_units() - 8.0).abs() < 1e-9);
        assert!(!fp.choose_slicc(7));
        assert!(fp.choose_slicc(8));
        assert!(fp.choose_slicc(16));
    }

    #[test]
    fn hybrid_selects_strex_on_few_cores() {
        let traces = vec![trace_with_footprint(0, 10 * 512)]; // 10 units
        let threads = vec![TxnThread::new(ThreadId::new(0), 0, TxnTypeId::new(0), 0)];
        let mut h = HybridSched::new(StrexParams::default(), SliccParams::default(), 32 * 1024);
        h.init(&threads, &traces, 4);
        assert_eq!(h.selected(), "STREX");
    }

    #[test]
    fn hybrid_selects_slicc_on_many_cores() {
        let traces = vec![trace_with_footprint(0, 10 * 512)]; // 10 units
        let threads = vec![TxnThread::new(ThreadId::new(0), 0, TxnTypeId::new(0), 0)];
        let mut h = HybridSched::new(StrexParams::default(), SliccParams::default(), 32 * 1024);
        h.init(&threads, &traces, 16);
        assert_eq!(h.selected(), "SLICC");
    }

    #[test]
    fn empty_table_never_chooses_slicc() {
        let fp = FpTable::default();
        assert!(fp.is_empty());
        assert!(!fp.choose_slicc(64));
        assert_eq!(fp.mean_units(), 0.0);
    }
}
