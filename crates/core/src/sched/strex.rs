//! The STREX scheduler (Section 4).
//!
//! STREX time-multiplexes a *team* of same-type transactions on one core so
//! that the instruction blocks a *lead* transaction fetches are reused by
//! the whole team before being evicted. The synchronization algorithm
//! (Section 4.2):
//!
//! 1. Teams of same-type transactions are placed in per-core thread queues;
//!    the first transaction is the lead.
//! 2. A per-core 8-bit phase counter tags every touched L1-I block (hit or
//!    miss) with the current phase. Whenever the lead resumes execution, it
//!    increments the counter.
//! 3. The victim monitor watches evictions: evicting a block tagged with
//!    the *current* phase means the thread has outrun the team's shared
//!    segment, so it is context-switched to the back of the queue.
//! 4. If the lead terminates, the next thread in the queue becomes lead.
//! 5. Threads run round-robin until all complete; then the core takes the
//!    next waiting team.

use std::collections::VecDeque;

use strex_oltp::trace::TxnTrace;
use strex_sim::addr::BlockAddr;
use strex_sim::cache::{FetchProbe, Victim};
use strex_sim::hierarchy::{InstFetch, MemorySystem};
use strex_sim::ids::{CoreId, Cycle, PhaseId, ThreadId};

use super::{Decision, Scheduler};
use crate::config::StrexParams;
use crate::team::{form_teams, Team};
use crate::thread::TxnThread;

/// Per-core STREX state: the thread queue, lead and phase counter.
#[derive(Clone, Debug, Default)]
struct CoreState {
    queue: VecDeque<ThreadId>,
    lead: Option<ThreadId>,
    phase: PhaseId,
    /// The thread currently executing (not in `queue`).
    running: Option<ThreadId>,
    /// Instruction-block fetches the running thread has executed this
    /// quantum (minimum-progress guard).
    quantum_fetches: u32,
}

/// The STREX scheduler.
///
/// # Examples
///
/// ```
/// use strex::config::StrexParams;
/// use strex::sched::{Scheduler, StrexSched};
///
/// let sched = StrexSched::new(StrexParams::default());
/// assert_eq!(sched.name(), "STREX");
/// ```
#[derive(Clone, Debug)]
pub struct StrexSched {
    params: StrexParams,
    cores: Vec<CoreState>,
    /// Teams not yet assigned to a core, in arrival order.
    waiting_teams: VecDeque<Team>,
    /// Context switches performed (reporting).
    switches: u64,
}

impl StrexSched {
    /// Creates the scheduler with the given parameters.
    pub fn new(params: StrexParams) -> Self {
        StrexSched {
            params,
            cores: Vec::new(),
            waiting_teams: VecDeque::new(),
            switches: 0,
        }
    }

    /// Context switches performed so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// The parameters in use.
    pub fn params(&self) -> StrexParams {
        self.params
    }

    fn take_next_team(&mut self, core: usize) {
        if let Some(team) = self.waiting_teams.pop_front() {
            let state = &mut self.cores[core];
            state.queue = team.members.into();
            state.lead = state.queue.front().copied();
        }
    }

    /// `true` when the victim monitor is live on `core`: there is a thread
    /// to yield to and the minimum-progress guard (Section 4.4.2) has been
    /// satisfied this quantum. Checked before any victim is consulted, in
    /// both the fused and unfused monitor paths.
    #[inline]
    fn monitor_armed(&self, core: CoreId) -> bool {
        let state = &self.cores[core.as_usize()];
        !state.queue.is_empty() && state.quantum_fetches >= self.params.min_quantum_fetches
    }

    /// Rule 3's decision given the would-be victim of the imminent fill:
    /// switch iff it would destroy a block tagged with the current phase.
    /// Shared by [`Scheduler::pre_fetch`] (which peeks the victim itself)
    /// and [`Scheduler::pre_fetch_probed`] (which receives it from the
    /// driver's fused scan) so the two paths cannot drift.
    #[inline]
    fn victim_decision(&self, core: CoreId, victim: Option<&Victim>) -> Decision {
        match victim {
            Some(v) if v.aux == self.cores[core.as_usize()].phase.value() => Decision::Switch,
            _ => Decision::Continue,
        }
    }
}

impl Scheduler for StrexSched {
    fn name(&self) -> &'static str {
        "STREX"
    }

    fn init(&mut self, threads: &[TxnThread], _traces: &[TxnTrace], n_cores: usize) {
        let arrivals: Vec<_> = threads.iter().map(|t| (t.id(), t.txn_type())).collect();
        self.waiting_teams = form_teams(
            &arrivals,
            self.params.team_size,
            self.params.formation_window,
        )
        .into();
        self.cores = vec![CoreState::default(); n_cores];
        for core in 0..n_cores {
            self.take_next_team(core);
        }
    }

    fn next_thread(&mut self, core: CoreId, _now: Cycle) -> Option<ThreadId> {
        let c = core.as_usize();
        if self.cores[c].queue.is_empty() && self.cores[c].running.is_none() {
            self.take_next_team(c);
        }
        let state = &mut self.cores[c];
        let next = state.queue.pop_front();
        state.running = next;
        next
    }

    fn on_sched_in(&mut self, core: CoreId, thread: ThreadId) {
        let state = &mut self.cores[core.as_usize()];
        state.quantum_fetches = 0;
        // Rule 2: whenever the lead resumes execution, increment the phase.
        if state.lead == Some(thread) {
            state.phase = state.phase.wrapping_next();
        }
    }

    fn phase_tag(&self, core: CoreId) -> u8 {
        self.cores[core.as_usize()].phase.value()
    }

    fn pre_fetch(
        &mut self,
        core: CoreId,
        _thread: ThreadId,
        block: BlockAddr,
        mem: &MemorySystem,
    ) -> Decision {
        // Rule 3: the victim monitor stops a thread at the point where the
        // pending fill would evict a block tagged with the current phase —
        // *before* the eviction happens, so the team's shared segment stays
        // intact for the threads still replaying it (Section 4.1).
        if !self.monitor_armed(core) {
            return Decision::Continue;
        }
        self.victim_decision(core, mem.l1i_peek_victim(core, block).as_ref())
    }

    fn pre_fetch_probed(
        &mut self,
        core: CoreId,
        _thread: ThreadId,
        _block: BlockAddr,
        probe: &FetchProbe,
        mem: &MemorySystem,
    ) -> Decision {
        // Fused form of the victim monitor: the driver already scanned the
        // set for the imminent fetch; the would-be victim is derived from
        // that scan, so the monitor costs no probe of its own — and
        // nothing at all while the guard holds it off.
        if !self.monitor_armed(core) {
            return Decision::Continue;
        }
        self.victim_decision(core, mem.l1i_probe_victim(core, probe).as_ref())
    }

    fn on_fetch(
        &mut self,
        core: CoreId,
        _thread: ThreadId,
        _block: BlockAddr,
        _fetch: &InstFetch,
        _mem: &MemorySystem,
    ) -> Decision {
        self.cores[core.as_usize()].quantum_fetches += 1;
        Decision::Continue
    }

    fn on_switch(&mut self, core: CoreId, thread: ThreadId) {
        let state = &mut self.cores[core.as_usize()];
        debug_assert_eq!(state.running, Some(thread));
        state.running = None;
        state.queue.push_back(thread);
        self.switches += 1;
    }

    fn on_migrate(&mut self, _thread: ThreadId, _dst: CoreId) {
        unreachable!("STREX never migrates threads");
    }

    fn on_done(&mut self, core: CoreId, thread: ThreadId, _now: Cycle) {
        let state = &mut self.cores[core.as_usize()];
        state.running = None;
        // Rule 4: if the lead terminated, the next queued thread leads.
        if state.lead == Some(thread) {
            state.lead = state.queue.front().copied();
        }
    }

    fn has_pending_work(&self) -> bool {
        !self.waiting_teams.is_empty()
            || self
                .cores
                .iter()
                .any(|c| !c.queue.is_empty() || c.running.is_some())
    }

    // The victim monitor is the mechanism (Section 4.1): the driver fuses
    // its peek with the demand fetch.
    fn uses_victim_monitor(&self) -> bool {
        true
    }

    fn context_switches(&self) -> u64 {
        self.switches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strex_sim::ids::TxnTypeId;
    use strex_sim::{BlockAddr, SystemConfig};

    fn threads(types: &[u16]) -> Vec<TxnThread> {
        types
            .iter()
            .enumerate()
            .map(|(i, &t)| TxnThread::new(ThreadId::new(i as u32), i, TxnTypeId::new(t), 0))
            .collect()
    }

    #[test]
    fn teams_assigned_to_cores() {
        let mut s = StrexSched::new(StrexParams::default());
        s.init(&threads(&[0, 0, 1, 1]), &[], 2);
        // Core 0 gets the type-0 team, core 1 the type-1 team.
        let t0 = s.next_thread(CoreId::new(0), 0).unwrap();
        assert_eq!(t0, ThreadId::new(0));
        let t1 = s.next_thread(CoreId::new(1), 0).unwrap();
        assert_eq!(t1, ThreadId::new(2));
    }

    #[test]
    fn lead_resumption_increments_phase() {
        let mut s = StrexSched::new(StrexParams::default());
        s.init(&threads(&[0, 0]), &[], 1);
        let lead = s.next_thread(CoreId::new(0), 0).unwrap();
        let p0 = s.phase_tag(CoreId::new(0));
        s.on_sched_in(CoreId::new(0), lead);
        assert_eq!(s.phase_tag(CoreId::new(0)), p0.wrapping_add(1));
        // Non-lead does not bump the phase.
        s.on_switch(CoreId::new(0), lead);
        let follower = s.next_thread(CoreId::new(0), 0).unwrap();
        assert_ne!(follower, lead);
        let p1 = s.phase_tag(CoreId::new(0));
        s.on_sched_in(CoreId::new(0), follower);
        assert_eq!(s.phase_tag(CoreId::new(0)), p1);
    }

    /// Fills one L1-I set of `mem` with blocks carrying the scheduler's
    /// current phase tag, returning a block whose fill would conflict.
    fn fill_conflicting_set(s: &StrexSched, mem: &mut MemorySystem) -> BlockAddr {
        let geom = mem.config().l1i_geometry;
        let sets = geom.sets() as u64;
        let phase = s.phase_tag(CoreId::new(0));
        for way in 0..geom.assoc() as u64 {
            mem.fetch_inst(CoreId::new(0), BlockAddr::new(way * sets), phase, 0);
        }
        BlockAddr::new(geom.assoc() as u64 * sets)
    }

    #[test]
    fn current_phase_victim_triggers_switch() {
        let params = StrexParams {
            min_quantum_fetches: 0,
            ..StrexParams::default()
        };
        let mut s = StrexSched::new(params);
        s.init(&threads(&[0, 0]), &[], 1);
        let lead = s.next_thread(CoreId::new(0), 0).unwrap();
        s.on_sched_in(CoreId::new(0), lead);
        let mut mem = MemorySystem::new(SystemConfig::with_cores(1));
        let conflicting = fill_conflicting_set(&s, &mut mem);
        assert_eq!(
            s.pre_fetch(CoreId::new(0), lead, conflicting, &mem),
            Decision::Switch,
            "pending fill would evict a current-phase block"
        );
        // A resident block never triggers the monitor.
        let geom = mem.config().l1i_geometry;
        assert_eq!(
            s.pre_fetch(
                CoreId::new(0),
                lead,
                BlockAddr::new(geom.sets() as u64),
                &mem
            ),
            Decision::Continue
        );
    }

    #[test]
    fn probed_monitor_agrees_with_peeking_monitor() {
        // pre_fetch_probed fed the hierarchy's own peek answer must decide
        // exactly as pre_fetch, which peeks internally — for the triggering
        // block, a resident block, and a fill into a free way.
        let params = StrexParams {
            min_quantum_fetches: 0,
            ..StrexParams::default()
        };
        let mut s = StrexSched::new(params);
        s.init(&threads(&[0, 0]), &[], 1);
        let lead = s.next_thread(CoreId::new(0), 0).unwrap();
        s.on_sched_in(CoreId::new(0), lead);
        let mut mem = MemorySystem::new(SystemConfig::with_cores(1));
        let conflicting = fill_conflicting_set(&s, &mut mem);
        let geom = mem.config().l1i_geometry;
        for block in [
            conflicting,
            BlockAddr::new(geom.sets() as u64), // resident
            BlockAddr::new(1),                  // different set, free way
        ] {
            let probe = mem.probe_fetch(CoreId::new(0), block);
            assert_eq!(
                mem.l1i_probe_victim(CoreId::new(0), &probe),
                mem.l1i_peek_victim(CoreId::new(0), block),
                "probe-derived victim must equal the peeked one"
            );
            assert_eq!(
                s.pre_fetch(CoreId::new(0), lead, block, &mem),
                s.pre_fetch_probed(CoreId::new(0), lead, block, &probe, &mem),
                "block {block:?}"
            );
        }
        let probe = mem.probe_fetch(CoreId::new(0), conflicting);
        assert_eq!(
            s.pre_fetch_probed(CoreId::new(0), lead, conflicting, &probe, &mem),
            Decision::Switch
        );
    }

    #[test]
    fn min_progress_guard_delays_switch() {
        let params = StrexParams {
            min_quantum_fetches: 5,
            ..StrexParams::default()
        };
        let mut s = StrexSched::new(params);
        s.init(&threads(&[0, 0]), &[], 1);
        let lead = s.next_thread(CoreId::new(0), 0).unwrap();
        s.on_sched_in(CoreId::new(0), lead);
        let mut mem = MemorySystem::new(SystemConfig::with_cores(1));
        let conflicting = fill_conflicting_set(&s, &mut mem);
        assert_eq!(
            s.pre_fetch(CoreId::new(0), lead, conflicting, &mem),
            Decision::Continue,
            "guard suppresses the monitor before min progress"
        );
        let dummy = InstFetch {
            stall: 0,
            hit: true,
            evicted: None,
        };
        for _ in 0..5 {
            s.on_fetch(CoreId::new(0), lead, BlockAddr::new(0), &dummy, &mem);
        }
        assert_eq!(
            s.pre_fetch(CoreId::new(0), lead, conflicting, &mem),
            Decision::Switch
        );
    }

    #[test]
    fn solo_thread_never_switches() {
        // With an empty queue there is nobody to yield to.
        let params = StrexParams {
            min_quantum_fetches: 0,
            ..StrexParams::default()
        };
        let mut s = StrexSched::new(params);
        s.init(&threads(&[0]), &[], 1);
        let t = s.next_thread(CoreId::new(0), 0).unwrap();
        s.on_sched_in(CoreId::new(0), t);
        let mut mem = MemorySystem::new(SystemConfig::with_cores(1));
        let conflicting = fill_conflicting_set(&s, &mut mem);
        assert_eq!(
            s.pre_fetch(CoreId::new(0), t, conflicting, &mem),
            Decision::Continue
        );
    }

    #[test]
    fn lead_succession_on_completion() {
        let mut s = StrexSched::new(StrexParams::default());
        s.init(&threads(&[0, 0, 0]), &[], 1);
        let lead = s.next_thread(CoreId::new(0), 0).unwrap();
        s.on_done(CoreId::new(0), lead, 100);
        let new_lead = s.next_thread(CoreId::new(0), 0).unwrap();
        s.on_sched_in(CoreId::new(0), new_lead);
        // The successor now bumps the phase on resume, proving leadership.
        let p = s.phase_tag(CoreId::new(0));
        s.on_switch(CoreId::new(0), new_lead);
        let other = s.next_thread(CoreId::new(0), 0).unwrap();
        s.on_sched_in(CoreId::new(0), other);
        assert_eq!(s.phase_tag(CoreId::new(0)), p, "non-lead resume: no bump");
    }

    #[test]
    fn core_takes_next_team_when_done() {
        let mut s = StrexSched::new(StrexParams::default());
        // Two type-teams, one core.
        s.init(&threads(&[0, 0, 1, 1]), &[], 1);
        let a = s.next_thread(CoreId::new(0), 0).unwrap();
        s.on_done(CoreId::new(0), a, 1);
        let b = s.next_thread(CoreId::new(0), 0).unwrap();
        s.on_done(CoreId::new(0), b, 2);
        // First team exhausted; second team starts.
        let c = s.next_thread(CoreId::new(0), 0).unwrap();
        assert_eq!(c, ThreadId::new(2));
        assert!(s.has_pending_work());
    }

    #[test]
    fn switch_counter_accumulates() {
        let mut s = StrexSched::new(StrexParams::default());
        s.init(&threads(&[0, 0]), &[], 1);
        let t = s.next_thread(CoreId::new(0), 0).unwrap();
        s.on_switch(CoreId::new(0), t);
        assert_eq!(s.switches(), 1);
    }
}
