//! SLICC reimplementation (comparison baseline; MICRO 2012, Section 3 of
//! the STREX paper).
//!
//! SLICC spreads a transaction's instruction footprint over *many* L1-Is by
//! migrating the thread to whichever core already caches the code segment
//! it is entering. The hardware (Table 4 budget) is a per-thread missed-tag
//! queue, a miss shift-vector tracking recent fetch hit/miss history, and
//! per-core cache signatures. The policy:
//!
//! * a burst of misses in the recent window signals a *segment change*;
//! * the missed tags are checked against every other core's signature; if a
//!   remote core covers enough of them, the thread migrates there;
//! * otherwise the thread migrates to the least-recently-fed core to build
//!   the new segment in a fresh cache (pipelining segments across cores);
//! * threads queue per core; a minimum residency prevents ping-ponging.
//!
//! With enough cores the aggregate L1-I holds every segment and threads
//! flow through them pipeline-style; with too few cores the segments do not
//! fit, the signatures never match, and migrations just add overhead — the
//! cliff that motivates STREX (Figures 5 and 6).

use std::collections::VecDeque;

use strex_oltp::trace::TxnTrace;
use strex_sim::addr::BlockAddr;
use strex_sim::hierarchy::{InstFetch, MemorySystem};
use strex_sim::ids::{CoreId, Cycle, ThreadId};

use super::{Decision, Scheduler};
use crate::config::SliccParams;
use crate::team::form_teams;
use crate::thread::TxnThread;

/// Per-thread migration-detection state.
#[derive(Clone, Debug, Default)]
struct ThreadState {
    /// Recently missed blocks (missed-tag queue).
    mtq: VecDeque<BlockAddr>,
    /// Hit/miss history of recent fetches (miss shift-vector), newest
    /// outcome in bit 0 — a literal shift register, as in the SLICC
    /// hardware. Only the low `window` bits are ever consulted, so the
    /// register simply shifts on every fetch; this runs on the per-event
    /// path, where the former `VecDeque<bool>` paid a push *and* a pop per
    /// fetch and a 100-element walk per count.
    shift: u128,
    /// Fetches executed since the thread landed on its current core.
    residency: usize,
    /// L1-I fills performed since landing (segment-built detector).
    fills: usize,
    /// L1-I hits scored since landing (segment-consumption detector).
    hits: usize,
}

/// Per-core run state.
#[derive(Clone, Debug, Default)]
struct CoreState {
    queue: VecDeque<ThreadId>,
    running: Option<ThreadId>,
    /// Monotone counter of when this core last received a migrating thread
    /// (used to rotate "fresh cache" targets).
    last_fed: u64,
}

/// The SLICC scheduler.
///
/// # Examples
///
/// ```
/// use strex::config::SliccParams;
/// use strex::sched::{Scheduler, SliccSched};
///
/// let sched = SliccSched::new(SliccParams::default());
/// assert_eq!(sched.name(), "SLICC");
/// ```
#[derive(Clone, Debug)]
pub struct SliccSched {
    params: SliccParams,
    threads: Vec<ThreadState>,
    cores: Vec<CoreState>,
    /// Threads beyond the active cap (`2 * n_cores`), in arrival order.
    backlog: VecDeque<ThreadId>,
    feed_clock: u64,
    migrations: u64,
}

impl SliccSched {
    /// Creates the scheduler with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params.window > 128` — the miss history is a 128-bit
    /// shift register. Configurations built through `SimConfig::builder`
    /// reject such windows with a `ConfigError` before reaching this
    /// point; the assert guards direct construction.
    pub fn new(params: SliccParams) -> Self {
        assert!(
            params.window <= 128,
            "SLICC miss window {} exceeds the 128-bit shift register",
            params.window
        );
        SliccSched {
            params,
            threads: Vec::new(),
            cores: Vec::new(),
            backlog: VecDeque::new(),
            feed_clock: 0,
            migrations: 0,
        }
    }

    /// Migrations performed so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Misses among the last `window` fetches: a masked popcount of the
    /// shift register (bits older than the window are simply not counted,
    /// exactly as the former bounded deque forgot them).
    fn miss_count(&self, thread: ThreadId) -> usize {
        let window = self.params.window;
        let mask = if window >= 128 {
            u128::MAX
        } else {
            (1u128 << window) - 1
        };
        (self.threads[thread.as_usize()].shift & mask).count_ones() as usize
    }

    /// The remote core whose signature covers the most missed tags, if any
    /// reaches the coverage threshold.
    fn best_covering_core(
        &self,
        current: CoreId,
        thread: ThreadId,
        mem: &MemorySystem,
    ) -> Option<CoreId> {
        let ts = &self.threads[thread.as_usize()];
        let mut best: Option<(usize, CoreId)> = None;
        for c in 0..self.cores.len() {
            let core = CoreId::new(c as u16);
            if core == current {
                continue;
            }
            let cov = mem.l1i_signature(core).coverage(ts.mtq.iter());
            if cov >= self.params.coverage_threshold && best.map(|(b, _)| cov > b).unwrap_or(true) {
                best = Some((cov, core));
            }
        }
        best.map(|(_, core)| core)
    }

    /// The best remote core to build a new segment on: the least-loaded,
    /// breaking ties toward the least-recently-fed (stalest cache).
    fn freshest_core(&self, current: CoreId) -> Option<CoreId> {
        let mut target = None;
        let mut best = (usize::MAX, u64::MAX);
        for (c, state) in self.cores.iter().enumerate() {
            let core = CoreId::new(c as u16);
            if core == current {
                continue;
            }
            let load = state.queue.len() + usize::from(state.running.is_some());
            if (load, state.last_fed) < best {
                best = (load, state.last_fed);
                target = Some(core);
            }
        }
        target
    }

    fn refill_from_backlog(&mut self) {
        // Keep up to `team_factor * n_cores` threads active.
        let cap = self.params.team_factor * self.cores.len();
        let active: usize = self
            .cores
            .iter()
            .map(|c| c.queue.len() + usize::from(c.running.is_some()))
            .sum();
        let mut free = cap.saturating_sub(active);
        while free > 0 {
            match self.backlog.pop_front() {
                Some(tid) => {
                    // Feed the emptiest core; coverage migrations pull the
                    // thread onto the segment pipeline from wherever it
                    // starts, and workloads that never migrate (footprint
                    // fits the L1-I) keep full core-level parallelism.
                    let (idx, _) = self
                        .cores
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, c)| c.queue.len() + usize::from(c.running.is_some()))
                        .expect("at least one core");
                    self.cores[idx].queue.push_back(tid);
                    free -= 1;
                }
                None => break,
            }
        }
    }
}

impl Scheduler for SliccSched {
    fn name(&self) -> &'static str {
        "SLICC"
    }

    fn init(&mut self, threads: &[TxnThread], _traces: &[TxnTrace], n_cores: usize) {
        self.threads = vec![ThreadState::default(); threads.len()];
        self.cores = vec![CoreState::default(); n_cores];
        // SLICC groups similar transactions like STREX does (the paper's
        // SLICC-Pp header-address grouping), with teams of up to 2N threads
        // active at once so same-type threads pipeline through the same
        // segment caches.
        let arrivals: Vec<_> = threads.iter().map(|t| (t.id(), t.txn_type())).collect();
        let team_cap = (self.params.team_factor * n_cores).max(1);
        self.backlog = form_teams(&arrivals, team_cap, 30)
            .into_iter()
            .flat_map(|team| team.members)
            .collect();
        self.refill_from_backlog();
    }

    fn next_thread(&mut self, core: CoreId, _now: Cycle) -> Option<ThreadId> {
        self.refill_from_backlog();
        let state = &mut self.cores[core.as_usize()];
        let next = state.queue.pop_front();
        state.running = next;
        if let Some(tid) = next {
            let ts = &mut self.threads[tid.as_usize()];
            ts.residency = 0;
            ts.fills = 0;
            ts.hits = 0;
        }
        next
    }

    fn on_sched_in(&mut self, _core: CoreId, _thread: ThreadId) {}

    fn phase_tag(&self, _core: CoreId) -> u8 {
        0
    }

    fn on_fetch(
        &mut self,
        core: CoreId,
        thread: ThreadId,
        block: BlockAddr,
        fetch: &InstFetch,
        mem: &MemorySystem,
    ) -> Decision {
        {
            let ts = &mut self.threads[thread.as_usize()];
            ts.residency += 1;
            ts.shift = (ts.shift << 1) | u128::from(!fetch.hit);
            if !fetch.hit {
                ts.mtq.push_back(block);
                if ts.mtq.len() > self.params.mtq_len {
                    ts.mtq.pop_front();
                }
            }
        }
        if fetch.hit {
            self.threads[thread.as_usize()].hits += 1;
            return Decision::Continue;
        }
        self.threads[thread.as_usize()].fills += 1;
        let ts = &self.threads[thread.as_usize()];
        if ts.residency < self.params.min_residency || ts.mtq.len() < self.params.mtq_len {
            return Decision::Continue;
        }
        // Segment-transition detection: a burst of misses *after* the
        // thread was consuming a resident segment (a hit streak). A thread
        // missing since it landed is building, not transitioning.
        let ts_ref = &self.threads[thread.as_usize()];
        let bursting = self.miss_count(thread) >= self.params.miss_burst
            && ts_ref.hits >= self.params.min_hits_before_follow;
        if bursting {
            if let Some(dst) = self.best_covering_core(core, thread, mem) {
                return Decision::Migrate(dst);
            }
        }
        // Second — the thread has filled this cache with its current
        // segment: spill to a fresh core and build the next segment there,
        // pipelining segments across the aggregate L1-I.
        if self.threads[thread.as_usize()].fills >= self.params.fill_cap {
            if let Some(dst) = self.freshest_core(core) {
                return Decision::Migrate(dst);
            }
        }
        Decision::Continue
    }

    fn on_switch(&mut self, core: CoreId, thread: ThreadId) {
        let state = &mut self.cores[core.as_usize()];
        state.running = None;
        state.queue.push_back(thread);
    }

    fn on_migrate(&mut self, thread: ThreadId, dst: CoreId) {
        self.migrations += 1;
        self.feed_clock += 1;
        // Clear detection state: history belongs to the old cache.
        let ts = &mut self.threads[thread.as_usize()];
        ts.shift = 0;
        ts.mtq.clear();
        ts.residency = 0;
        ts.fills = 0;
        ts.hits = 0;
        // The thread left its source core; the driver clears `running`.
        for c in &mut self.cores {
            if c.running == Some(thread) {
                c.running = None;
            }
        }
        let dst_state = &mut self.cores[dst.as_usize()];
        dst_state.last_fed = self.feed_clock;
        dst_state.queue.push_back(thread);
    }

    fn on_done(&mut self, core: CoreId, _thread: ThreadId, _now: Cycle) {
        self.cores[core.as_usize()].running = None;
        self.refill_from_backlog();
    }

    fn has_pending_work(&self) -> bool {
        !self.backlog.is_empty()
            || self
                .cores
                .iter()
                .any(|c| !c.queue.is_empty() || c.running.is_some())
    }

    fn migrations(&self) -> u64 {
        self.migrations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strex_sim::ids::TxnTypeId;

    fn threads(n: u32) -> Vec<TxnThread> {
        (0..n)
            .map(|i| TxnThread::new(ThreadId::new(i), i as usize, TxnTypeId::new(0), 0))
            .collect()
    }

    #[test]
    fn active_set_capped_at_two_per_core() {
        let mut s = SliccSched::new(SliccParams::default());
        s.init(&threads(20), &[], 4);
        let active: usize = s.cores.iter().map(|c| c.queue.len()).sum();
        assert_eq!(active, 8, "2 x 4 cores active");
        assert_eq!(s.backlog.len(), 12);
    }

    #[test]
    fn next_thread_drains_backlog_over_time() {
        let mut s = SliccSched::new(SliccParams::default());
        s.init(&threads(6), &[], 2);
        let t = s.next_thread(CoreId::new(0), 0).unwrap();
        s.on_done(CoreId::new(0), t, 10);
        // Completing work lets the backlog refill the active set.
        assert!(s.cores.iter().map(|c| c.queue.len()).sum::<usize>() >= 3);
    }

    #[test]
    fn migration_moves_thread_and_counts() {
        let mut s = SliccSched::new(SliccParams::default());
        s.init(&threads(4), &[], 2);
        let t = s.next_thread(CoreId::new(0), 0).unwrap();
        s.on_migrate(t, CoreId::new(1));
        assert_eq!(s.migrations(), 1);
        assert!(s.cores[1].queue.contains(&t));
        assert_eq!(s.cores[0].running, None);
    }

    #[test]
    fn migration_clears_detection_state() {
        let mut s = SliccSched::new(SliccParams::default());
        s.init(&threads(2), &[], 2);
        let t = s.next_thread(CoreId::new(0), 0).unwrap();
        s.threads[t.as_usize()].shift = 0b101;
        s.threads[t.as_usize()].mtq.push_back(BlockAddr::new(9));
        assert_eq!(s.miss_count(t), 2);
        s.on_migrate(t, CoreId::new(1));
        assert_eq!(s.threads[t.as_usize()].shift, 0);
        assert_eq!(s.miss_count(t), 0);
        assert!(s.threads[t.as_usize()].mtq.is_empty());
    }

    #[test]
    fn no_migration_before_min_residency() {
        let mut s = SliccSched::new(SliccParams::default());
        s.init(&threads(2), &[], 2);
        let t = s.next_thread(CoreId::new(0), 0).unwrap();
        let mem = MemorySystem::new(strex_sim::SystemConfig::with_cores(2));
        // A miss right after landing must not trigger migration.
        let fetch = InstFetch {
            stall: 50,
            hit: false,
            evicted: None,
        };
        assert_eq!(
            s.on_fetch(CoreId::new(0), t, BlockAddr::new(5), &fetch, &mem),
            Decision::Continue
        );
    }

    #[test]
    fn has_pending_work_tracks_all_queues() {
        let mut s = SliccSched::new(SliccParams::default());
        s.init(&threads(1), &[], 1);
        assert!(s.has_pending_work());
        let t = s.next_thread(CoreId::new(0), 0).unwrap();
        assert!(s.has_pending_work(), "running thread counts");
        s.on_done(CoreId::new(0), t, 5);
        assert!(!s.has_pending_work());
    }
}
