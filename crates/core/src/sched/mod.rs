//! The scheduler abstraction the simulation driver drives.
//!
//! A [`Scheduler`] decides which thread each core runs and reacts to fetch
//! outcomes: STREX context-switches on same-phase victims, SLICC migrates
//! on miss bursts, the baseline does nothing. The driver owns the memory
//! system and threads and feeds the scheduler the observations hardware
//! would have.

pub mod baseline;
pub mod hybrid;
pub mod registry;
pub mod slicc;
pub mod strex;

pub use baseline::BaselineSched;
pub use hybrid::{FpTable, HybridSched};
pub use registry::{SchedulerFactory, SchedulerRegistry};
pub use slicc::SliccSched;
pub use strex::StrexSched;

use strex_oltp::trace::TxnTrace;
use strex_sim::addr::BlockAddr;
use strex_sim::cache::FetchProbe;
use strex_sim::hierarchy::{InstFetch, MemorySystem};
use strex_sim::ids::{CoreId, Cycle, ThreadId};

use crate::thread::TxnThread;

/// What the core should do after the current fetch.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum Decision {
    /// Keep running the current thread.
    Continue,
    /// Context-switch: requeue the thread locally, run the next one.
    Switch,
    /// Migrate the thread to another core and pick up local work.
    Migrate(CoreId),
}

/// The scheduling policy interface.
pub trait Scheduler {
    /// Display name (figure labels).
    fn name(&self) -> &'static str;

    /// Distributes the thread pool before the simulation starts.
    fn init(&mut self, threads: &[TxnThread], traces: &[TxnTrace], n_cores: usize);

    /// Picks the next thread for an idle `core`, removing it from whatever
    /// queue the scheduler keeps. Returns `None` if the core has no work.
    fn next_thread(&mut self, core: CoreId, now: Cycle) -> Option<ThreadId>;

    /// Called when `thread` starts (or resumes) running on `core` —
    /// STREX bumps the phase counter here when the lead resumes.
    fn on_sched_in(&mut self, core: CoreId, thread: ThreadId);

    /// The phase tag fetches on `core` should carry right now.
    fn phase_tag(&self, core: CoreId) -> u8;

    /// Consulted *before* an instruction fetch executes. Returning
    /// [`Decision::Switch`] abandons the fetch (the thread retries it when
    /// next scheduled) — this is STREX's victim monitor, which stops a
    /// thread at the point where it *would be forced* to evict a block
    /// tagged with the current phase (Section 4.1), keeping the team's
    /// shared segment intact in the cache.
    fn pre_fetch(
        &mut self,
        _core: CoreId,
        _thread: ThreadId,
        _block: BlockAddr,
        _mem: &MemorySystem,
    ) -> Decision {
        Decision::Continue
    }

    /// The fused-probe form of [`pre_fetch`](Scheduler::pre_fetch), used by
    /// the driver's fused loop: `probe` is the *same single L1-I tag scan*
    /// the subsequent fetch will commit, so a policy that needs the
    /// imminent fill's victim (STREX's victim monitor) reads it through
    /// [`MemorySystem::l1i_probe_victim`] without a second scan of the set
    /// — and a policy that never asks pays nothing beyond the scan the
    /// fetch needed anyway.
    ///
    /// The default forwards to [`pre_fetch`](Scheduler::pre_fetch),
    /// ignoring `probe` — always correct for custom policies (at the cost
    /// of whatever probing their `pre_fetch` does itself). Overrides must
    /// return exactly what `pre_fetch` would for the same state; the
    /// driver's fused and unfused loops are differentially tested to be
    /// bit-identical.
    fn pre_fetch_probed(
        &mut self,
        core: CoreId,
        thread: ThreadId,
        block: BlockAddr,
        probe: &FetchProbe,
        mem: &MemorySystem,
    ) -> Decision {
        let _ = probe;
        self.pre_fetch(core, thread, block, mem)
    }

    /// Reacts to one instruction fetch of `block` by `thread` on `core`.
    fn on_fetch(
        &mut self,
        core: CoreId,
        thread: ThreadId,
        block: BlockAddr,
        fetch: &InstFetch,
        mem: &MemorySystem,
    ) -> Decision;

    /// Called when the driver executes [`Decision::Switch`]: the scheduler
    /// must requeue `thread` on `core`.
    fn on_switch(&mut self, core: CoreId, thread: ThreadId);

    /// Called when the driver executes [`Decision::Migrate`]: the scheduler
    /// must enqueue `thread` at `dst`.
    fn on_migrate(&mut self, thread: ThreadId, dst: CoreId);

    /// Called when `thread` finishes on `core`.
    fn on_done(&mut self, core: CoreId, thread: ThreadId, now: Cycle);

    /// `true` if any scheduler queue still holds runnable work (used by the
    /// driver to decide whether idle cores should poll again).
    fn has_pending_work(&self) -> bool;

    /// `true` if this policy's [`pre_fetch`](Scheduler::pre_fetch) may
    /// consult the imminent fill's victim (STREX's victim monitor). The
    /// driver fuses the monitor's peek with the demand fetch into one
    /// L1-I tag scan only for such schedulers; for everyone else the
    /// straight fetch path is used, with nothing threaded between the
    /// scheduler calls and the fetch. Like
    /// [`is_passive`](Scheduler::is_passive), the answer is consulted once
    /// per run, after [`init`](Scheduler::init) — and the default (`false`)
    /// is always *correct*, since the fused and unfused paths are
    /// bit-identical; declaring `true` only changes which loop runs.
    fn uses_victim_monitor(&self) -> bool {
        false
    }

    /// `true` if this policy never interposes on individual events, letting
    /// the driver take its monomorphized fast path (no per-event virtual
    /// dispatch, no `Decision` handling).
    ///
    /// Contract — a scheduler may return `true` only if, for every possible
    /// input, [`pre_fetch`](Scheduler::pre_fetch) and
    /// [`on_fetch`](Scheduler::on_fetch) always return
    /// [`Decision::Continue`], [`phase_tag`](Scheduler::phase_tag) is
    /// always `0`, and none of the three has side effects. The driver then
    /// skips those calls entirely; scheduling-boundary callbacks
    /// (`next_thread`, `on_sched_in`, `on_done`) are still delivered. The
    /// answer is only consulted *after* [`init`](Scheduler::init), so
    /// policies that pick a delegate at init time (the hybrid) can forward
    /// to it. Defaults to `false`, which is always safe.
    fn is_passive(&self) -> bool {
        false
    }

    /// Context switches performed (STREX; 0 for others).
    fn context_switches(&self) -> u64 {
        0
    }

    /// Migrations performed (SLICC; 0 for others).
    fn migrations(&self) -> u64 {
        0
    }

    /// Which policy a hybrid selected, if this is a hybrid.
    fn hybrid_choice(&self) -> Option<&'static str> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_equality() {
        assert_eq!(Decision::Continue, Decision::Continue);
        assert_ne!(Decision::Switch, Decision::Continue);
        assert_eq!(
            Decision::Migrate(CoreId::new(3)),
            Decision::Migrate(CoreId::new(3))
        );
        assert_ne!(
            Decision::Migrate(CoreId::new(1)),
            Decision::Migrate(CoreId::new(2))
        );
    }
}
