//! Pluggable scheduler construction: factories and the registry the
//! driver resolves policies from.
//!
//! The driver never names a concrete scheduler type; it asks a
//! [`SchedulerRegistry`] to build one from the configuration's registry
//! key ([`SchedulerKind::key`]). Custom policies — ablations, paper
//! extensions — implement [`SchedulerFactory`], register under a fresh
//! name, and immediately work with [`driver::run`](crate::driver),
//! [`Campaign`](crate::campaign::Campaign) matrices and the `repro`
//! harness, without touching the driver.
//!
//! ```
//! use strex::config::SimConfig;
//! use strex::sched::registry::{self, SchedulerFactory, SchedulerRegistry};
//! use strex::sched::{BaselineSched, Scheduler};
//!
//! // A custom policy: the baseline under a new name.
//! struct MyPolicy;
//! impl SchedulerFactory for MyPolicy {
//!     fn name(&self) -> &'static str { "my-policy" }
//!     fn create(&self, _config: &SimConfig) -> Box<dyn Scheduler> {
//!         Box::new(BaselineSched::new())
//!     }
//! }
//!
//! let mut reg = SchedulerRegistry::with_defaults();
//! reg.register(Box::new(MyPolicy));
//! assert!(reg.get("my-policy").is_some());
//! assert!(registry::global().get("strex").is_some());
//! ```

use std::sync::OnceLock;

use strex_oltp::workload::Workload;

use crate::config::{SchedulerKind, SimConfig};
use crate::driver::{self, SimScratch};
use crate::report::Report;
use crate::sched::{BaselineSched, HybridSched, Scheduler, SliccSched, StrexSched};

/// Builds scheduler instances from a configuration.
///
/// `Send + Sync` because campaign workers construct schedulers
/// concurrently from a shared registry.
pub trait SchedulerFactory: Send + Sync {
    /// The registry key (and lookup name) of this policy.
    fn name(&self) -> &'static str;

    /// Creates a fresh scheduler for one simulation run.
    fn create(&self, config: &SimConfig) -> Box<dyn Scheduler>;

    /// Runs one simulation through the driver loop *monomorphized for this
    /// factory's concrete scheduler type*
    /// ([`driver::run_typed_scratch`]), or `None` to let the caller fall
    /// back to the `dyn Scheduler` loop via
    /// [`create`](SchedulerFactory::create).
    ///
    /// The default returns `None`, which is always correct — the typed and
    /// dyn loops are bit-identical — so custom policies only override this
    /// when they want the per-event virtual calls compiled out. Every
    /// built-in factory overrides it; [`driver::run`],
    /// [`driver::run_registered`] and campaign cells all reach the typed
    /// loop through here.
    fn run_typed(
        &self,
        workload: &Workload,
        config: &SimConfig,
        scratch: &mut SimScratch,
    ) -> Option<Report> {
        let _ = (workload, config, scratch);
        None
    }
}

/// A name-keyed collection of [`SchedulerFactory`]s.
pub struct SchedulerRegistry {
    entries: Vec<Box<dyn SchedulerFactory>>,
}

impl SchedulerRegistry {
    /// A registry with no entries.
    pub fn empty() -> Self {
        SchedulerRegistry {
            entries: Vec::new(),
        }
    }

    /// A registry holding the paper's four policies under the keys
    /// `"baseline"`, `"strex"`, `"slicc"` and `"hybrid"`.
    pub fn with_defaults() -> Self {
        let mut reg = SchedulerRegistry::empty();
        reg.register(Box::new(BaselineFactory));
        reg.register(Box::new(StrexFactory));
        reg.register(Box::new(SliccFactory));
        reg.register(Box::new(HybridFactory));
        reg
    }

    /// Adds `factory`, replacing any entry with the same name.
    pub fn register(&mut self, factory: Box<dyn SchedulerFactory>) {
        self.entries.retain(|e| e.name() != factory.name());
        self.entries.push(factory);
    }

    /// Looks a factory up by name.
    pub fn get(&self, name: &str) -> Option<&dyn SchedulerFactory> {
        self.entries
            .iter()
            .find(|e| e.name() == name)
            .map(AsRef::as_ref)
    }

    /// Builds a scheduler by name, or `None` if the name is unknown.
    pub fn create(&self, name: &str, config: &SimConfig) -> Option<Box<dyn Scheduler>> {
        self.get(name).map(|f| f.create(config))
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name()).collect()
    }
}

impl Default for SchedulerRegistry {
    fn default() -> Self {
        SchedulerRegistry::with_defaults()
    }
}

/// The process-wide registry [`driver::run`](crate::driver::run()) consults:
/// the built-in policies. Callers needing custom entries build their own
/// [`SchedulerRegistry`] and go through
/// [`driver::run_registered`](crate::driver::run_registered()) or
/// [`Campaign::run_on`](crate::campaign::Campaign::run_on).
pub fn global() -> &'static SchedulerRegistry {
    static GLOBAL: OnceLock<SchedulerRegistry> = OnceLock::new();
    GLOBAL.get_or_init(SchedulerRegistry::with_defaults)
}

/// Factory for the conventional run-to-completion baseline.
pub struct BaselineFactory;

impl BaselineFactory {
    /// The one place this factory constructs its scheduler — both the
    /// boxed `create` and the monomorphized `run_typed` go through it, so
    /// the two driver paths cannot drift apart on construction.
    fn build(_config: &SimConfig) -> BaselineSched {
        BaselineSched::new()
    }
}

impl SchedulerFactory for BaselineFactory {
    fn name(&self) -> &'static str {
        SchedulerKind::Baseline.key()
    }

    fn create(&self, config: &SimConfig) -> Box<dyn Scheduler> {
        Box::new(Self::build(config))
    }

    fn run_typed(
        &self,
        workload: &Workload,
        config: &SimConfig,
        scratch: &mut SimScratch,
    ) -> Option<Report> {
        let mut sched = Self::build(config);
        Some(driver::run_typed_scratch(
            workload, config, &mut sched, scratch,
        ))
    }
}

/// Factory for STREX stratified execution.
pub struct StrexFactory;

impl StrexFactory {
    /// Single construction point shared by `create` and `run_typed`.
    fn build(config: &SimConfig) -> StrexSched {
        StrexSched::new(config.strex)
    }
}

impl SchedulerFactory for StrexFactory {
    fn name(&self) -> &'static str {
        SchedulerKind::Strex.key()
    }

    fn create(&self, config: &SimConfig) -> Box<dyn Scheduler> {
        Box::new(Self::build(config))
    }

    fn run_typed(
        &self,
        workload: &Workload,
        config: &SimConfig,
        scratch: &mut SimScratch,
    ) -> Option<Report> {
        let mut sched = Self::build(config);
        Some(driver::run_typed_scratch(
            workload, config, &mut sched, scratch,
        ))
    }
}

/// Factory for SLICC thread migration.
pub struct SliccFactory;

impl SliccFactory {
    /// Single construction point shared by `create` and `run_typed`.
    fn build(config: &SimConfig) -> SliccSched {
        SliccSched::new(config.slicc)
    }
}

impl SchedulerFactory for SliccFactory {
    fn name(&self) -> &'static str {
        SchedulerKind::Slicc.key()
    }

    fn create(&self, config: &SimConfig) -> Box<dyn Scheduler> {
        Box::new(Self::build(config))
    }

    fn run_typed(
        &self,
        workload: &Workload,
        config: &SimConfig,
        scratch: &mut SimScratch,
    ) -> Option<Report> {
        let mut sched = Self::build(config);
        Some(driver::run_typed_scratch(
            workload, config, &mut sched, scratch,
        ))
    }
}

/// Factory for the Section 5.5 footprint-profiled hybrid.
pub struct HybridFactory;

impl HybridFactory {
    /// Single construction point shared by `create` and `run_typed` — the
    /// three-argument constructor (and in particular the L1-I size source)
    /// lives here once.
    fn build(config: &SimConfig) -> HybridSched {
        HybridSched::new(
            config.strex,
            config.slicc,
            config.system.l1i_geometry.size_bytes(),
        )
    }
}

impl SchedulerFactory for HybridFactory {
    fn name(&self) -> &'static str {
        SchedulerKind::Hybrid.key()
    }

    fn create(&self, config: &SimConfig) -> Box<dyn Scheduler> {
        Box::new(Self::build(config))
    }

    fn run_typed(
        &self,
        workload: &Workload,
        config: &SimConfig,
        scratch: &mut SimScratch,
    ) -> Option<Report> {
        let mut sched = Self::build(config);
        Some(driver::run_typed_scratch(
            workload, config, &mut sched, scratch,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_every_kind() {
        let reg = SchedulerRegistry::with_defaults();
        for kind in SchedulerKind::ALL {
            assert!(reg.get(kind.key()).is_some(), "{kind} missing");
        }
        assert_eq!(reg.names().len(), 4);
    }

    #[test]
    fn create_builds_the_right_policy() {
        let reg = SchedulerRegistry::with_defaults();
        let cfg = SimConfig::new(2, SchedulerKind::Strex);
        let sched = reg.create("strex", &cfg).expect("registered");
        assert_eq!(sched.name(), "STREX");
        assert!(reg.create("unknown", &cfg).is_none());
    }

    #[test]
    fn register_replaces_same_name() {
        struct Override;
        impl SchedulerFactory for Override {
            fn name(&self) -> &'static str {
                "baseline"
            }
            fn create(&self, _c: &SimConfig) -> Box<dyn Scheduler> {
                Box::new(StrexSched::new(crate::config::StrexParams::default()))
            }
        }
        let mut reg = SchedulerRegistry::with_defaults();
        reg.register(Box::new(Override));
        assert_eq!(reg.names().len(), 4);
        let cfg = SimConfig::new(2, SchedulerKind::Baseline);
        let sched = reg.create("baseline", &cfg).expect("still present");
        assert_eq!(sched.name(), "STREX", "override must win");
    }

    #[test]
    fn global_registry_is_stable() {
        assert!(std::ptr::eq(global(), global()));
        assert_eq!(global().names().len(), 4);
    }
}
