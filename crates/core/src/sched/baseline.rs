//! The conventional baseline scheduler (Section 2).
//!
//! Transactions are assigned to cores in arrival order to balance load, and
//! each runs to completion — no context switches, no migration, no explicit
//! effort to improve instruction reuse. This is the system every figure of
//! the paper normalizes against.

use std::collections::VecDeque;

use strex_oltp::trace::TxnTrace;
use strex_sim::addr::BlockAddr;
use strex_sim::hierarchy::{InstFetch, MemorySystem};
use strex_sim::ids::{CoreId, Cycle, ThreadId};

use super::{Decision, Scheduler};
use crate::thread::TxnThread;

/// Run-to-completion scheduler with a single global arrival queue.
///
/// # Examples
///
/// ```
/// use strex::sched::{BaselineSched, Scheduler};
///
/// let sched = BaselineSched::new();
/// assert_eq!(sched.name(), "Base");
/// ```
#[derive(Clone, Debug, Default)]
pub struct BaselineSched {
    queue: VecDeque<ThreadId>,
}

impl BaselineSched {
    /// Creates the scheduler.
    pub fn new() -> Self {
        BaselineSched::default()
    }
}

impl Scheduler for BaselineSched {
    fn name(&self) -> &'static str {
        "Base"
    }

    fn init(&mut self, threads: &[TxnThread], _traces: &[TxnTrace], _n_cores: usize) {
        self.queue = threads.iter().map(TxnThread::id).collect();
    }

    fn next_thread(&mut self, _core: CoreId, _now: Cycle) -> Option<ThreadId> {
        self.queue.pop_front()
    }

    fn on_sched_in(&mut self, _core: CoreId, _thread: ThreadId) {}

    fn phase_tag(&self, _core: CoreId) -> u8 {
        0
    }

    fn on_fetch(
        &mut self,
        _core: CoreId,
        _thread: ThreadId,
        _block: BlockAddr,
        _fetch: &InstFetch,
        _mem: &MemorySystem,
    ) -> Decision {
        Decision::Continue
    }

    fn on_switch(&mut self, _core: CoreId, thread: ThreadId) {
        // The baseline never requests switches; tolerate one defensively.
        self.queue.push_back(thread);
    }

    fn on_migrate(&mut self, thread: ThreadId, _dst: CoreId) {
        self.queue.push_back(thread);
    }

    fn on_done(&mut self, _core: CoreId, _thread: ThreadId, _now: Cycle) {}

    fn has_pending_work(&self) -> bool {
        !self.queue.is_empty()
    }

    // Run-to-completion: never switches, never migrates, never tags — the
    // driver may run its monomorphized fast path.
    fn is_passive(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strex_sim::ids::TxnTypeId;

    fn threads(n: u32) -> Vec<TxnThread> {
        (0..n)
            .map(|i| TxnThread::new(ThreadId::new(i), i as usize, TxnTypeId::new(0), 0))
            .collect()
    }

    #[test]
    fn fifo_dispatch() {
        let mut s = BaselineSched::new();
        s.init(&threads(3), &[], 2);
        assert_eq!(s.next_thread(CoreId::new(0), 0), Some(ThreadId::new(0)));
        assert_eq!(s.next_thread(CoreId::new(1), 0), Some(ThreadId::new(1)));
        assert!(s.has_pending_work());
        assert_eq!(s.next_thread(CoreId::new(0), 0), Some(ThreadId::new(2)));
        assert!(!s.has_pending_work());
        assert_eq!(s.next_thread(CoreId::new(0), 0), None);
    }

    #[test]
    fn never_switches() {
        let mut s = BaselineSched::new();
        s.init(&threads(1), &[], 1);
        let fetch = InstFetch {
            stall: 100,
            hit: false,
            evicted: None,
        };
        let mem = MemorySystem::new(strex_sim::SystemConfig::with_cores(1));
        assert_eq!(
            s.on_fetch(
                CoreId::new(0),
                ThreadId::new(0),
                BlockAddr::new(1),
                &fetch,
                &mem
            ),
            Decision::Continue
        );
    }
}
