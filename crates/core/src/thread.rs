//! Transaction-thread state: a virtual hardware context replaying a trace.

use strex_oltp::trace::{TraceCursor, TxnTrace};
use strex_sim::ids::{Cycle, ThreadId, TxnTypeId};

/// One transaction thread (virtual context).
#[derive(Clone, Debug)]
pub struct TxnThread {
    id: ThreadId,
    trace_idx: usize,
    txn_type: TxnTypeId,
    cursor: TraceCursor,
    arrival: Cycle,
    completed: Option<Cycle>,
}

impl TxnThread {
    /// Creates a thread replaying `traces[trace_idx]`, arriving at `arrival`.
    pub fn new(id: ThreadId, trace_idx: usize, txn_type: TxnTypeId, arrival: Cycle) -> Self {
        TxnThread {
            id,
            trace_idx,
            txn_type,
            cursor: TraceCursor::new(),
            arrival,
            completed: None,
        }
    }

    /// Thread identifier.
    pub fn id(&self) -> ThreadId {
        self.id
    }

    /// Index of the trace this thread replays.
    pub fn trace_idx(&self) -> usize {
        self.trace_idx
    }

    /// Transaction type (team formation key).
    pub fn txn_type(&self) -> TxnTypeId {
        self.txn_type
    }

    /// Replay cursor.
    pub fn cursor(&self) -> TraceCursor {
        self.cursor
    }

    /// Mutable replay cursor.
    pub fn cursor_mut(&mut self) -> &mut TraceCursor {
        &mut self.cursor
    }

    /// Arrival cycle (entering the transaction queue).
    pub fn arrival(&self) -> Cycle {
        self.arrival
    }

    /// Completion cycle, if finished.
    pub fn completed(&self) -> Option<Cycle> {
        self.completed
    }

    /// Marks the thread complete at `now`.
    ///
    /// # Panics
    ///
    /// Panics if already marked complete.
    pub fn mark_completed(&mut self, now: Cycle) {
        assert!(self.completed.is_none(), "thread completed twice");
        self.completed = Some(now);
    }

    /// Latency from queue entry to completion (Section 5.4's metric), if
    /// the thread has finished.
    pub fn latency(&self) -> Option<Cycle> {
        self.completed.map(|c| c - self.arrival)
    }

    /// `true` once every event of the trace has been replayed.
    pub fn is_done(&self, trace: &TxnTrace) -> bool {
        self.cursor.done(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut t = TxnThread::new(ThreadId::new(1), 0, TxnTypeId::new(2), 100);
        assert_eq!(t.arrival(), 100);
        assert_eq!(t.completed(), None);
        assert_eq!(t.latency(), None);
        t.mark_completed(500);
        assert_eq!(t.latency(), Some(400));
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_completion_panics() {
        let mut t = TxnThread::new(ThreadId::new(1), 0, TxnTypeId::new(0), 0);
        t.mark_completed(10);
        t.mark_completed(20);
    }

    #[test]
    fn cursor_is_mutable() {
        let mut t = TxnThread::new(ThreadId::new(3), 7, TxnTypeId::new(0), 0);
        t.cursor_mut().advance();
        assert_eq!(t.cursor().position(), 1);
        assert_eq!(t.trace_idx(), 7);
    }
}
