//! CPU affinity pinning for campaign workers and `repro dist` children.
//!
//! Multi-process campaign fan-out wants each worker process (and each
//! in-process worker thread) parked on one core: pinning stops the OS
//! scheduler from migrating a worker mid-cell, which would drag its
//! packed trace stream and simulator state across LLC domains and charge
//! the migration to the measurement. Workers execute their cells
//! workload-major (matrix order), so consecutive cells replay the same
//! trace pool — staying on one core keeps that stream LLC-hot from cell
//! to cell.
//!
//! The implementation is a direct `sched_setaffinity(2)` call through the
//! C library (no `libc` crate — the workspace is offline), gated to
//! Linux. Everywhere else [`pin_to_core`] is a no-op returning `false`,
//! and callers treat pinning as best-effort: a failed pin degrades to the
//! unpinned behavior, never to an error.

/// Pins the *calling thread* to `core` (a zero-based CPU index).
///
/// Returns `true` if the affinity mask was applied. Returns `false` — and
/// changes nothing — on non-Linux targets, for core indices beyond the
/// 1024-bit `cpu_set_t`, or when the kernel rejects the mask (e.g. the
/// core does not exist or is outside the process's cgroup cpuset).
///
/// Child processes inherit the mask across `fork`/`exec`, which is how
/// `repro dist --pin` spreads its shard children: the parent passes each
/// child a `--pin <core>` argument and the child pins itself first thing.
pub fn pin_to_core(core: usize) -> bool {
    pin_impl(core)
}

#[cfg(target_os = "linux")]
fn pin_impl(core: usize) -> bool {
    // A glibc/musl cpu_set_t is 1024 bits; represent it as 16 u64 words.
    const WORDS: usize = 16;
    if core >= WORDS * 64 {
        return false;
    }
    let mut mask = [0u64; WORDS];
    mask[core / 64] = 1u64 << (core % 64);

    extern "C" {
        // PID 0 = the calling thread. Declared directly against the C
        // library (which std already links) instead of the libc crate.
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    // SAFETY: `mask` outlives the call and `cpusetsize` matches its size;
    // sched_setaffinity reads the mask and touches no other memory.
    unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
}

#[cfg(not(target_os = "linux"))]
fn pin_impl(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_range_cores_are_rejected() {
        assert!(!pin_to_core(1 << 20));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pinning_to_core_zero_succeeds_on_linux() {
        // Core 0 always exists (outside exotic cpusets). This pins only
        // the test's own thread, which the harness discards afterwards.
        assert!(pin_to_core(0));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pinning_to_an_absent_core_fails_cleanly() {
        let beyond = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            + 512;
        if beyond < 1024 {
            assert!(!pin_to_core(beyond));
        }
    }
}
